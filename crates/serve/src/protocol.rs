//! The request line protocol, shared by the TCP front door and the
//! CLI batch driver.
//!
//! One request per line:
//!
//! ```text
//! <structure> [<var>=<size>[,<var>=<size>...]]
//! ```
//!
//! e.g. `X n=2000,m=200`. Four special lines ask for introspection
//! instead of a solve: `STATS` (server counters, one JSON line),
//! `METRICS` (Prometheus text exposition, multi-line, ending with a
//! `# EOF` line), `SLOW` (slowest retained traces, one `gmc-traces/1`
//! JSON line) and `CACHE` (per-shard and per-structure cache stats,
//! one JSON line). Replies are one compact JSON object per line:
//!
//! ```text
//! {"structure":"X","outcome":"hit","cost":9.68e8,"flops":9.68e8,
//!  "parenthesization":"((A^-1 B) C^T)","kernels":["TRMM_RLT","POSV_LN"]}
//! {"structure":"X","error":"unknown structure `X` (register it first)"}
//! ```

use crate::histogram::HistogramSnapshot;
use crate::{ServeReply, ServerStats};
use serde::Value;

/// A parsed request line: the structure name, the named dimension
/// sizes, and the optional `deadline_ms=` budget.
pub type ParsedRequest = (String, Vec<(String, usize)>, Option<u64>);

/// Parses a request line into `(structure, named sizes, deadline)`.
///
/// The reserved binding `deadline_ms=<n>` is split off rather than
/// treated as a dimension: it asks the server to answer
/// `deadline_exceeded` if the request is still queued `n` milliseconds
/// from parse time.
///
/// Variable names stay plain strings here: `DimVar` interning is
/// process-wide and permanent, so untrusted client input must be
/// resolved against a registered structure's (bounded) variable
/// vocabulary — [`crate::ServeHandle::submit_raw_batch`] does that —
/// rather than interned wholesale.
///
/// # Errors
///
/// Returns a description of the malformed part.
pub fn parse_request_line(line: &str) -> Result<ParsedRequest, String> {
    let line = line.trim();
    let (name, rest) = match line.split_once(char::is_whitespace) {
        Some((name, rest)) => (name, rest.trim()),
        None => (line, ""),
    };
    if name.is_empty() {
        return Err("empty request line (expected `<structure> [var=size,...]`)".to_owned());
    }
    let mut vars = Vec::new();
    let mut deadline_ms = None;
    if !rest.is_empty() {
        for part in rest.split(',') {
            let part = part.trim();
            let Some((var, value)) = part.split_once('=') else {
                return Err(format!("bad binding `{part}` (expected `var=size`)"));
            };
            let var = var.trim();
            if var.is_empty() {
                return Err(format!("bad binding `{part}` (empty variable name)"));
            }
            if var == "deadline_ms" {
                let ms: u64 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad deadline in `{part}` (expected milliseconds)"))?;
                deadline_ms = Some(ms);
                continue;
            }
            let value: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("bad size in `{part}` (expected an integer)"))?;
            vars.push((var.to_owned(), value));
        }
    }
    Ok((name.to_owned(), vars, deadline_ms))
}

/// Renders a reply as one compact JSON line (without the newline).
pub fn reply_to_json(reply: &ServeReply) -> String {
    let mut fields = vec![(
        "structure".to_owned(),
        Value::String(reply.structure.clone()),
    )];
    match &reply.result {
        Ok(served) => {
            fields.push((
                "outcome".to_owned(),
                Value::String(served.outcome.label().to_owned()),
            ));
            fields.push(("cost".to_owned(), Value::Number(served.cost)));
            fields.push(("flops".to_owned(), Value::Number(served.flops)));
            fields.push((
                "parenthesization".to_owned(),
                Value::String(served.parenthesization.clone()),
            ));
            fields.push((
                "kernels".to_owned(),
                Value::Array(
                    served
                        .kernels
                        .iter()
                        .map(|k| Value::String(k.clone()))
                        .collect(),
                ),
            ));
        }
        Err(e) => {
            fields.push(("error".to_owned(), Value::String(e.to_string())));
            // A stable machine-readable tag per variant, so clients can
            // branch without parsing prose.
            fields.push(("code".to_owned(), Value::String(e.code().to_owned())));
        }
    }
    serde_json::to_string(&Value::Object(fields)).expect("reply values are finite")
}

/// Quantile summary fields shared by every latency entry: count, p50,
/// p90, p99, max (nanoseconds).
fn quantile_fields(snapshot: &HistogramSnapshot) -> Vec<(String, Value)> {
    vec![
        ("count".to_owned(), Value::Number(snapshot.count() as f64)),
        (
            "p50_ns".to_owned(),
            Value::Number(snapshot.quantile(0.5) as f64),
        ),
        (
            "p90_ns".to_owned(),
            Value::Number(snapshot.quantile(0.9) as f64),
        ),
        (
            "p99_ns".to_owned(),
            Value::Number(snapshot.quantile(0.99) as f64),
        ),
        ("max_ns".to_owned(), Value::Number(snapshot.max() as f64)),
    ]
}

/// Renders the server counters as one compact JSON line. Alongside the
/// cache counters (which count instantiates), the line carries the
/// per-request `served` counters (one consistent snapshot:
/// `served_hits + served_misses + failed == completed`) and the
/// latency layer: total and queue quantiles, the total histogram's
/// non-empty buckets as `[upper_bound_ns, count]` pairs in strictly
/// increasing bound order, per-(structure, hit/miss) class quantiles,
/// and per-stage span quantiles in [`crate::STAGES`] order.
pub fn stats_to_json(stats: &ServerStats) -> String {
    let mut total = quantile_fields(&stats.latency.total);
    total.push((
        "buckets".to_owned(),
        Value::Array(
            stats
                .latency
                .total
                .buckets()
                .map(|(upper, count)| {
                    Value::Array(vec![
                        Value::Number(upper as f64),
                        Value::Number(count as f64),
                    ])
                })
                .collect(),
        ),
    ));
    let classes = stats
        .latency
        .classes
        .iter()
        .map(|c| {
            let mut fields = vec![
                ("structure".to_owned(), Value::String(c.structure.clone())),
                (
                    "class".to_owned(),
                    Value::String(if c.hit { "hit" } else { "miss" }.to_owned()),
                ),
            ];
            fields.extend(quantile_fields(&c.snapshot));
            Value::Object(fields)
        })
        .collect();
    let latency = Value::Object(vec![
        ("unit".to_owned(), Value::String("ns".to_owned())),
        ("total".to_owned(), Value::Object(total)),
        (
            "queue".to_owned(),
            Value::Object(quantile_fields(&stats.latency.queue)),
        ),
        (
            "expired".to_owned(),
            Value::Object(quantile_fields(&stats.latency.expired)),
        ),
        ("classes".to_owned(), Value::Array(classes)),
        (
            "stages".to_owned(),
            Value::Array(
                stats
                    .latency
                    .stages
                    .iter()
                    .map(|s| {
                        let mut fields =
                            vec![("stage".to_owned(), Value::String(s.stage.to_owned()))];
                        fields.extend(quantile_fields(&s.snapshot));
                        Value::Object(fields)
                    })
                    .collect(),
            ),
        ),
    ]);
    let doc = Value::Object(vec![
        (
            "requests".to_owned(),
            Value::Number(stats.cache.requests() as f64),
        ),
        ("hits".to_owned(), Value::Number(stats.cache.hits as f64)),
        (
            "region_misses".to_owned(),
            Value::Number(stats.cache.region_misses as f64),
        ),
        (
            "structure_misses".to_owned(),
            Value::Number(stats.cache.structure_misses as f64),
        ),
        (
            "coalesced".to_owned(),
            Value::Number(stats.coalesced as f64),
        ),
        ("batches".to_owned(), Value::Number(stats.batches as f64)),
        (
            "structures".to_owned(),
            Value::Number(stats.structures as f64),
        ),
        (
            "completed".to_owned(),
            Value::Number(stats.served.completed as f64),
        ),
        (
            "served_hits".to_owned(),
            Value::Number(stats.served.hits as f64),
        ),
        (
            "served_misses".to_owned(),
            Value::Number(stats.served.misses as f64),
        ),
        (
            "failed".to_owned(),
            Value::Number(stats.served.failed as f64),
        ),
        (
            "rejected".to_owned(),
            Value::Number(stats.served.rejected as f64),
        ),
        (
            "rejected_overload".to_owned(),
            Value::Number(stats.served.rejected_overload as f64),
        ),
        (
            "expired".to_owned(),
            Value::Number(stats.served.expired as f64),
        ),
        (
            "worker_panics".to_owned(),
            Value::Number(stats.supervision.worker_panics as f64),
        ),
        (
            "respawns".to_owned(),
            Value::Number(stats.supervision.respawns as f64),
        ),
        (
            "workers_alive".to_owned(),
            Value::Number(stats.supervision.workers_alive as f64),
        ),
        ("latency".to_owned(), latency),
    ]);
    serde_json::to_string(&doc).expect("counters are finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_lines() {
        let (name, b, d) = parse_request_line("X n=2000,m=200").unwrap();
        assert_eq!(name, "X");
        assert_eq!(b, vec![("n".to_owned(), 2000), ("m".to_owned(), 200)]);
        assert_eq!(d, None);
        let (name, b, _) = parse_request_line("  Y  ").unwrap();
        assert_eq!(name, "Y");
        assert!(b.is_empty());
        let (_, b, _) = parse_request_line("Z n = 7 , m = 8").unwrap();
        assert_eq!(b.len(), 2);
        assert!(parse_request_line("").is_err());
        assert!(parse_request_line("X n=").is_err());
        assert!(parse_request_line("X n").is_err());
        assert!(parse_request_line("X =5").is_err());
    }

    #[test]
    fn splits_deadline_from_bindings() {
        let (name, b, d) = parse_request_line("X n=10,deadline_ms=250,m=20").unwrap();
        assert_eq!(name, "X");
        assert_eq!(b, vec![("n".to_owned(), 10), ("m".to_owned(), 20)]);
        assert_eq!(d, Some(250));
        let (_, b, d) = parse_request_line("X deadline_ms=0").unwrap();
        assert!(b.is_empty());
        assert_eq!(d, Some(0));
        assert!(parse_request_line("X deadline_ms=soon").is_err());
    }
}
