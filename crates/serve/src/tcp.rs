//! A thin TCP line-protocol listener over `std::net::TcpListener`.
//!
//! Each connection reads request lines (see [`crate::protocol`]) and
//! writes one JSON reply line per request. Four introspection lines
//! are recognized alongside solve requests: `STATS` (one JSON line of
//! server counters), `METRICS` (the Prometheus text exposition,
//! multi-line, terminated by a `# EOF` line), `SLOW` (the retained
//! slowest traces as one `gmc-traces/1` JSON line) and `CACHE` (one
//! JSON line of per-shard and per-structure cache stats). This is
//! deliberately a minimal front end: the batching, coalescing and
//! caching all live in the worker pool behind the [`ServeHandle`].
//!
//! The connection loop is defensive about malformed clients: request
//! lines are capped at [`TcpOptions::max_line_bytes`] (an oversized
//! line gets an error reply and is discarded instead of buffered
//! unboundedly), reads carry a timeout so a half-open idle connection
//! releases its thread, and a parse error answers with an error line
//! but keeps the connection alive.

use crate::protocol::{parse_request_line, reply_to_json, stats_to_json};
use crate::{RequestOptions, ServeHandle, ServeReply};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Connection-hardening knobs for the TCP front door.
#[derive(Clone, Copy, Debug)]
pub struct TcpOptions {
    /// Longest request line accepted, in bytes (newline excluded). A
    /// longer line is answered with a `bad_request` error reply and
    /// discarded; the connection stays open.
    pub max_line_bytes: usize,
    /// Read timeout per request line; a connection idle longer than
    /// this is closed so it cannot pin its thread forever. `None`
    /// blocks indefinitely.
    pub read_timeout: Option<Duration>,
}

impl Default for TcpOptions {
    fn default() -> TcpOptions {
        TcpOptions {
            max_line_bytes: 64 * 1024,
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A running TCP front door; dropping it leaves the listener thread
/// running, call [`shutdown`](TcpFrontDoor::shutdown) to stop it.
pub struct TcpFrontDoor {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpFrontDoor {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting connections, serving them through `handle`,
    /// with default [`TcpOptions`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(handle: ServeHandle, addr: &str) -> std::io::Result<TcpFrontDoor> {
        TcpFrontDoor::bind_with(handle, addr, TcpOptions::default())
    }

    /// [`bind`](TcpFrontDoor::bind) with explicit hardening options.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(
        handle: ServeHandle,
        addr: &str,
        options: TcpOptions,
    ) -> std::io::Result<TcpFrontDoor> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("gmc-serve-accept".to_owned())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let handle = handle.clone();
                        std::thread::Builder::new()
                            .name("gmc-serve-conn".to_owned())
                            .spawn(move || {
                                serve_connection(stream, &handle, &options);
                            })
                            .ok();
                    }
                })?
        };
        Ok(TcpFrontDoor {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. Connections already
    /// being served run to completion on their own threads. A panicked
    /// accept thread is reported, not propagated: shutdown must always
    /// complete.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a self-connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform, so aim at the matching loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        TcpStream::connect(wake).ok();
        if let Some(t) = self.accept.take() {
            if t.join().is_err() {
                eprintln!("gmc-serve: accept thread panicked (shutdown continues)");
            }
        }
    }
}

/// One bounded read of a request line.
enum LineRead {
    /// A complete line within the cap (newline stripped, may be empty).
    Line(String),
    /// The line overflowed the cap; the remainder was discarded up to
    /// the next newline, the connection can continue.
    Oversized,
    /// EOF, timeout, I/O error, or an unrecoverably long line: stop
    /// serving this connection.
    Closed,
}

/// Reads one `\n`-terminated line of at most `max` bytes. On overflow
/// the rest of the line is discarded (bounded by a multiple of `max`)
/// so one hostile line cannot buffer unboundedly or desync the stream.
fn read_bounded_line(reader: &mut impl BufRead, max: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(_) => return LineRead::Closed,
        };
        if available.is_empty() {
            // EOF: a trailing unterminated line still gets served.
            return if buf.is_empty() {
                LineRead::Closed
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            };
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&available[..pos]);
            reader.consume(pos + 1);
            return if buf.len() > max {
                LineRead::Oversized
            } else {
                LineRead::Line(String::from_utf8_lossy(&buf).into_owned())
            };
        }
        let taken = available.len();
        buf.extend_from_slice(available);
        reader.consume(taken);
        if buf.len() > max {
            buf.clear();
            return if discard_to_newline(reader, max.saturating_mul(16)) {
                LineRead::Oversized
            } else {
                LineRead::Closed
            };
        }
    }
}

/// Skips input until after the next newline, giving up (and telling the
/// caller to close) once `cap` bytes have been discarded without one.
fn discard_to_newline(reader: &mut impl BufRead, cap: usize) -> bool {
    let mut discarded = 0usize;
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(_) => return false,
        };
        if available.is_empty() {
            return false;
        }
        if let Some(pos) = available.iter().position(|&b| b == b'\n') {
            reader.consume(pos + 1);
            return true;
        }
        let taken = available.len();
        discarded = discarded.saturating_add(taken);
        reader.consume(taken);
        if discarded > cap {
            return false;
        }
    }
}

fn serve_connection(stream: TcpStream, handle: &ServeHandle, options: &TcpOptions) {
    stream.set_read_timeout(options.read_timeout).ok();
    let Ok(peer_write) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(peer_write);
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader, options.max_line_bytes) {
            LineRead::Line(line) => line,
            LineRead::Oversized => {
                let reply = ServeReply {
                    structure: String::new(),
                    result: Err(crate::ServeError::BadRequest(format!(
                        "request line exceeds {} bytes",
                        options.max_line_bytes
                    ))),
                };
                if write_reply_line(&mut writer, &reply_to_json(&reply)).is_err() {
                    break;
                }
                continue;
            }
            LineRead::Closed => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = if line.trim() == "STATS" {
            stats_to_json(&handle.stats())
        } else if line.trim() == "METRICS" {
            // Multi-line Prometheus text exposition, terminated by a
            // `# EOF` line so line-oriented clients know where the
            // scrape ends (every other reply stays one line).
            let mut body = handle.metrics_prometheus();
            if !body.is_empty() && !body.ends_with('\n') {
                body.push('\n');
            }
            body.push_str("# EOF");
            body
        } else if line.trim() == "SLOW" {
            handle.slow_traces_json()
        } else if line.trim() == "CACHE" {
            handle.cache_introspection_json()
        } else {
            match parse_request_line(&line) {
                // `solve_raw` resolves the string-named variables
                // against the structure's own vocabulary — untrusted
                // names are never interned.
                Ok((structure, vars, deadline_ms)) => {
                    let opts = match deadline_ms {
                        Some(ms) => RequestOptions::with_deadline_in(Duration::from_millis(ms)),
                        None => RequestOptions::default(),
                    };
                    reply_to_json(&handle.solve_raw(&structure, vars, opts))
                }
                // Parse errors answer in-band; the connection lives on.
                Err(e) => reply_to_json(&ServeReply {
                    structure: String::new(),
                    result: Err(crate::ServeError::BadRequest(e)),
                }),
            }
        };
        if write_reply_line(&mut writer, &response).is_err() {
            break;
        }
    }
}

fn write_reply_line(writer: &mut impl Write, response: &str) -> std::io::Result<()> {
    writer.write_all(response.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn bounded_reader_accepts_lines_within_cap() {
        let mut input = Cursor::new(b"hello world\nsecond\n".to_vec());
        let mut reader = BufReader::new(&mut input);
        assert!(matches!(
            read_bounded_line(&mut reader, 64),
            LineRead::Line(l) if l == "hello world"
        ));
        assert!(matches!(
            read_bounded_line(&mut reader, 64),
            LineRead::Line(l) if l == "second"
        ));
        assert!(matches!(
            read_bounded_line(&mut reader, 64),
            LineRead::Closed
        ));
    }

    #[test]
    fn bounded_reader_serves_trailing_unterminated_line() {
        let mut input = Cursor::new(b"tail".to_vec());
        let mut reader = BufReader::new(&mut input);
        assert!(matches!(
            read_bounded_line(&mut reader, 64),
            LineRead::Line(l) if l == "tail"
        ));
    }

    #[test]
    fn bounded_reader_discards_oversized_line_and_resyncs() {
        let mut payload = vec![b'x'; 200];
        payload.push(b'\n');
        payload.extend_from_slice(b"next\n");
        let mut input = Cursor::new(payload);
        let mut reader = BufReader::new(&mut input);
        assert!(matches!(
            read_bounded_line(&mut reader, 16),
            LineRead::Oversized
        ));
        assert!(matches!(
            read_bounded_line(&mut reader, 16),
            LineRead::Line(l) if l == "next"
        ));
    }

    #[test]
    fn bounded_reader_closes_on_endless_line() {
        // No newline at all and far past the discard cap: close.
        let mut input = Cursor::new(vec![b'x'; 20 * 16 + 64]);
        let mut reader = BufReader::new(&mut input);
        assert!(matches!(
            read_bounded_line(&mut reader, 16),
            LineRead::Closed
        ));
    }
}
