//! A thin TCP line-protocol listener over `std::net::TcpListener`.
//!
//! Each connection reads request lines (see [`crate::protocol`]) and
//! writes one JSON reply line per request. This is deliberately a
//! minimal front end: the batching, coalescing and caching all live in
//! the worker pool behind the [`ServeHandle`].

use crate::protocol::{parse_request_line, reply_to_json, stats_to_json};
use crate::{ServeHandle, ServeReply};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP front door; dropping it leaves the listener thread
/// running, call [`shutdown`](TcpFrontDoor::shutdown) to stop it.
pub struct TcpFrontDoor {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl TcpFrontDoor {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting connections, serving them through `handle`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(handle: ServeHandle, addr: &str) -> std::io::Result<TcpFrontDoor> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("gmc-serve-accept".to_owned())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let handle = handle.clone();
                        std::thread::Builder::new()
                            .name("gmc-serve-conn".to_owned())
                            .spawn(move || {
                                serve_connection(stream, &handle);
                            })
                            .ok();
                    }
                })?
        };
        Ok(TcpFrontDoor {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. Connections already
    /// being served run to completion on their own threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a self-connection. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable on every
        // platform, so aim at the matching loopback instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        TcpStream::connect(wake).ok();
        if let Some(t) = self.accept.take() {
            t.join().expect("accept thread panicked");
        }
    }
}

fn serve_connection(stream: TcpStream, handle: &ServeHandle) {
    let Ok(peer_write) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(peer_write);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = if line.trim() == "STATS" {
            stats_to_json(&handle.stats())
        } else {
            match parse_request_line(&line) {
                // `solve_raw` resolves the string-named variables
                // against the structure's own vocabulary — untrusted
                // names are never interned.
                Ok((structure, vars)) => reply_to_json(&handle.solve_raw(&structure, vars)),
                Err(e) => reply_to_json(&ServeReply {
                    structure: String::new(),
                    result: Err(crate::ServeError::BadRequest(e)),
                }),
            }
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}
