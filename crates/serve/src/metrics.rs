//! Scrape-time rendering of the serve layer's observability surfaces.
//!
//! The hot path writes each fact exactly once — served counters into
//! [`CounterCell`](crate::ServedCounters), latency samples into the
//! [`LatencyBook`](crate::LatencySnapshot) histograms, stage spans into
//! the registry's live histograms, cache outcomes into the plan
//! cache's per-shard and per-structure atomics. This module assembles
//! the full Prometheus exposition (and the `CACHE` JSON summary) from
//! those authoritative sources *at scrape time*, so serving never pays
//! for a counter it already keeps.
//!
//! Rendered families (all names are stable API):
//!
//! | family | kind | labels |
//! |---|---|---|
//! | `gmc.serve.requests.completed` | counter | — |
//! | `gmc.serve.requests.served` | counter | `class` = `hit`/`miss`/`failed` |
//! | `gmc.serve.requests.rejected` | counter | `reason` = `overload`/`expired`/`other` |
//! | `gmc.serve.coalesced`, `gmc.serve.batches` | counter | — |
//! | `gmc.serve.structures`, `gmc.serve.workers.alive` | gauge | — |
//! | `gmc.serve.worker.panics`, `gmc.serve.worker.respawns` | counter | — |
//! | `gmc.serve.stage.latency.ns` | histogram | `stage` (see [`STAGES`](crate::STAGES)) |
//! | `gmc.serve.latency.ns` | histogram | `scope` = `total`/`queue`/`expired` |
//! | `gmc.serve.class.latency.ns` | histogram | `structure`, `class` = `hit`/`miss` |
//! | `gmc.serve.class.overflow` | counter | — |
//! | `gmc.cache.requests` | counter | `outcome` = `hit`/`miss_region`/`miss_structure` |
//! | `gmc.cache.shard.*` | counter/gauge | `shard` |
//! | `gmc.cache.structure.{hits,misses,regions}` | counter/gauge | `structure` |
//! | `gmc.obs.slow_traces.{offered,kept,capacity}` | counter/gauge | — |

use crate::Shared;
use gmc_obs::registry::DEFAULT_SERIES_CAP;
use gmc_obs::Exposition;
use gmc_plan::sync::read_lock;
use serde::Value;

/// Renders the full Prometheus text exposition for a running server.
pub(crate) fn render_prometheus(shared: &Shared) -> String {
    let mut expo = Exposition::new();
    // Live instruments first: the per-stage span histograms (the only
    // metrics the hot path records directly into the registry).
    shared.obs.registry.render_into(&mut expo);

    let stats = shared.stats();

    let served = stats.served;
    expo.add_counter(
        "gmc.serve.requests.completed",
        "Requests a worker answered (successfully or not)",
        &[],
        served.completed,
    );
    let served_help = "Completed requests by outcome class";
    expo.add_counter(
        "gmc.serve.requests.served",
        served_help,
        &[("class", "hit")],
        served.hits,
    );
    expo.add_counter(
        "gmc.serve.requests.served",
        served_help,
        &[("class", "miss")],
        served.misses,
    );
    expo.add_counter(
        "gmc.serve.requests.served",
        served_help,
        &[("class", "failed")],
        served.failed,
    );
    let rejected_help = "Requests answered before reaching a worker, by reason";
    expo.add_counter(
        "gmc.serve.requests.rejected",
        rejected_help,
        &[("reason", "overload")],
        served.rejected_overload,
    );
    expo.add_counter(
        "gmc.serve.requests.rejected",
        rejected_help,
        &[("reason", "expired")],
        served.expired,
    );
    expo.add_counter(
        "gmc.serve.requests.rejected",
        rejected_help,
        &[("reason", "other")],
        served
            .rejected
            .saturating_sub(served.rejected_overload)
            .saturating_sub(served.expired),
    );
    expo.add_counter(
        "gmc.serve.coalesced",
        "Requests answered from another in-flight request's instantiate",
        &[],
        stats.coalesced,
    );
    expo.add_counter(
        "gmc.serve.batches",
        "Batches dispatched to workers",
        &[],
        stats.batches,
    );
    expo.add_gauge(
        "gmc.serve.structures",
        "Registered structures",
        &[],
        stats.structures as f64,
    );
    expo.add_gauge(
        "gmc.serve.workers.alive",
        "Worker threads currently alive",
        &[],
        stats.supervision.workers_alive as f64,
    );
    expo.add_counter(
        "gmc.serve.worker.panics",
        "Worker threads that died by panic",
        &[],
        stats.supervision.worker_panics,
    );
    expo.add_counter(
        "gmc.serve.worker.respawns",
        "Workers the supervisor respawned",
        &[],
        stats.supervision.respawns,
    );

    let latency_help = "Request latency in nanoseconds by scope";
    expo.add_histogram(
        "gmc.serve.latency.ns",
        latency_help,
        &[("scope", "total")],
        stats.latency.total,
    );
    expo.add_histogram(
        "gmc.serve.latency.ns",
        latency_help,
        &[("scope", "queue")],
        stats.latency.queue,
    );
    expo.add_histogram(
        "gmc.serve.latency.ns",
        latency_help,
        &[("scope", "expired")],
        stats.latency.expired,
    );
    for class in stats.latency.classes {
        expo.add_histogram(
            "gmc.serve.class.latency.ns",
            "Enqueue-to-complete latency per (structure, hit/miss) class",
            &[
                ("structure", &class.structure),
                ("class", if class.hit { "hit" } else { "miss" }),
            ],
            class.snapshot,
        );
    }
    expo.add_counter(
        "gmc.serve.class.overflow",
        "Latency-class lookups funneled into the shared `other` class",
        &[],
        shared.latency.overflowed(),
    );

    let cache_help = "Plan-cache instantiates by outcome";
    expo.add_counter(
        "gmc.cache.requests",
        cache_help,
        &[("outcome", "hit")],
        stats.cache.hits,
    );
    expo.add_counter(
        "gmc.cache.requests",
        cache_help,
        &[("outcome", "miss_region")],
        stats.cache.region_misses,
    );
    expo.add_counter(
        "gmc.cache.requests",
        cache_help,
        &[("outcome", "miss_structure")],
        stats.cache.structure_misses,
    );
    for s in shared.cache.shard_stats() {
        let shard = s.shard.to_string();
        let labels: [(&str, &str); 1] = [("shard", &shard)];
        expo.add_gauge(
            "gmc.cache.shard.structures",
            "Distinct structures cached per shard",
            &labels,
            s.structures as f64,
        );
        expo.add_gauge(
            "gmc.cache.shard.regions",
            "Size regions recorded per shard",
            &labels,
            s.regions as f64,
        );
        expo.add_counter(
            "gmc.cache.shard.hits",
            "Cache hits per shard",
            &labels,
            s.hits,
        );
        expo.add_counter(
            "gmc.cache.shard.region_misses",
            "New-region recordings per shard",
            &labels,
            s.region_misses,
        );
        expo.add_counter(
            "gmc.cache.shard.structure_misses",
            "New-structure recordings per shard",
            &labels,
            s.structure_misses,
        );
        expo.add_counter(
            "gmc.cache.shard.coalesced_waiters",
            "Misses served as hits after losing the recording race",
            &labels,
            s.coalesced_waiters,
        );
        expo.add_counter(
            "gmc.cache.shard.snapshot_swaps",
            "Copy-on-write snapshot publications per shard",
            &labels,
            s.snapshot_swaps,
        );
    }
    for s in structure_cache_stats(shared) {
        let labels: [(&str, &str); 1] = [("structure", &s.name)];
        expo.add_counter(
            "gmc.cache.structure.hits",
            "Cache hits per registered structure",
            &labels,
            s.hits,
        );
        expo.add_counter(
            "gmc.cache.structure.misses",
            "Cache misses per registered structure",
            &labels,
            s.misses,
        );
        expo.add_gauge(
            "gmc.cache.structure.regions",
            "Size regions cached per registered structure",
            &labels,
            s.regions as f64,
        );
    }

    expo.add_counter(
        "gmc.obs.slow_traces.offered",
        "Completed traces offered to the slow-trace ring",
        &[],
        shared.obs.ring.offered(),
    );
    expo.add_counter(
        "gmc.obs.slow_traces.kept",
        "Traces the slow-trace ring admitted",
        &[],
        shared.obs.ring.kept(),
    );
    expo.add_gauge(
        "gmc.obs.slow_traces.capacity",
        "Slow-trace ring capacity",
        &[],
        shared.obs.ring.capacity() as f64,
    );

    expo.render()
}

/// Renders the `CACHE` introspection summary: cache totals, per-shard
/// stats and per-structure stats, as one stable JSON object.
pub(crate) fn render_cache(shared: &Shared) -> String {
    let totals = shared.cache.stats();
    let shards: Vec<Value> = shared
        .cache
        .shard_stats()
        .into_iter()
        .map(|s| {
            Value::Object(vec![
                ("shard".to_owned(), num(s.shard as u64)),
                ("structures".to_owned(), num(s.structures as u64)),
                ("regions".to_owned(), num(s.regions as u64)),
                ("hits".to_owned(), num(s.hits)),
                ("region_misses".to_owned(), num(s.region_misses)),
                ("structure_misses".to_owned(), num(s.structure_misses)),
                ("coalesced_waiters".to_owned(), num(s.coalesced_waiters)),
                ("snapshot_swaps".to_owned(), num(s.snapshot_swaps)),
            ])
        })
        .collect();
    let structures: Vec<Value> = structure_cache_stats(shared)
        .into_iter()
        .map(|s| {
            Value::Object(vec![
                ("name".to_owned(), Value::String(s.name)),
                ("hits".to_owned(), num(s.hits)),
                ("misses".to_owned(), num(s.misses)),
                ("regions".to_owned(), num(s.regions as u64)),
            ])
        })
        .collect();
    let root = Value::Object(vec![
        (
            "totals".to_owned(),
            Value::Object(vec![
                ("requests".to_owned(), num(totals.requests())),
                ("hits".to_owned(), num(totals.hits)),
                ("region_misses".to_owned(), num(totals.region_misses)),
                ("structure_misses".to_owned(), num(totals.structure_misses)),
            ]),
        ),
        ("shards".to_owned(), Value::Array(shards)),
        ("structures".to_owned(), Value::Array(structures)),
    ]);
    serde_json::to_string(&root).unwrap_or_else(|_| "{}".to_owned())
}

fn num(v: u64) -> Value {
    Value::Number(v as f64)
}

/// Per-structure cache counters, resolved through the server's own
/// structure registrations.
struct StructureCacheStats {
    name: String,
    hits: u64,
    misses: u64,
    regions: usize,
}

/// Cache counters per registered structure, sorted by name. Like every
/// labeled family, the set is bounded: beyond
/// [`DEFAULT_SERIES_CAP`] structures the remainder is aggregated into
/// one `other` entry, so a client registering thousands of structures
/// cannot blow up the scrape.
fn structure_cache_stats(shared: &Shared) -> Vec<StructureCacheStats> {
    let mut names: Vec<(String, std::sync::Arc<gmc_expr::SymChain>)> =
        read_lock(&shared.structures)
            .iter()
            .map(|(name, chain)| (name.clone(), std::sync::Arc::clone(chain)))
            .collect();
    names.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(names.len().min(DEFAULT_SERIES_CAP + 1));
    let mut other: Option<StructureCacheStats> = None;
    for (name, chain) in names {
        let (hits, misses, regions) = match shared.cache.plan_for(&chain) {
            Some(plan) => (plan.hits(), plan.misses(), plan.region_count()),
            None => (0, 0, 0),
        };
        if out.len() < DEFAULT_SERIES_CAP {
            out.push(StructureCacheStats {
                name,
                hits,
                misses,
                regions,
            });
        } else {
            let agg = other.get_or_insert_with(|| StructureCacheStats {
                name: "other".to_owned(),
                hits: 0,
                misses: 0,
                regions: 0,
            });
            agg.hits += hits;
            agg.misses += misses;
            agg.regions += regions;
        }
    }
    out.extend(other);
    out
}
