//! The discrimination net: a trie over flattened patterns.
//!
//! Patterns and subject expressions are *flattened* into preorder token
//! sequences ("flatterms", Christian 1993). The net is a trie over
//! pattern tokens; matching walks the subject's flatterm and the trie in
//! lockstep. Operator tokens must agree exactly; wildcard edges consume
//! one leaf symbol and bind it. Because several edges can apply at a
//! node, matching backtracks — but the depth is bounded by the pattern
//! size, which is constant for kernel patterns (paper Sec. 3.4).

use crate::pattern::{Bindings, Pattern, Var};
use gmc_expr::{Expr, Operand};

/// Structural operator tokens shared by patterns and subjects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpTok {
    /// n-ary product with the given arity.
    Times(usize),
    /// n-ary sum with the given arity.
    Plus(usize),
    Transpose,
    Inverse,
    InverseTranspose,
}

/// One token of a flattened pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PatTok {
    Op(OpTok),
    Wild(Var),
}

/// One token of a flattened subject expression.
///
/// Symbols are held by value: [`Operand`] is reference counted, so the
/// clone is a refcount bump, not a heap allocation — which is what lets
/// a [`FlatTermScratch`] buffer be reused across queries of different
/// lifetimes.
#[derive(Clone, Debug)]
enum SubTok {
    Op(OpTok),
    Sym(Operand),
}

fn flatten_pattern(p: &Pattern, out: &mut Vec<PatTok>) {
    match p {
        Pattern::Wildcard(v) => out.push(PatTok::Wild(*v)),
        Pattern::Transpose(inner) => {
            out.push(PatTok::Op(OpTok::Transpose));
            flatten_pattern(inner, out);
        }
        Pattern::Inverse(inner) => {
            out.push(PatTok::Op(OpTok::Inverse));
            flatten_pattern(inner, out);
        }
        Pattern::InverseTranspose(inner) => {
            out.push(PatTok::Op(OpTok::InverseTranspose));
            flatten_pattern(inner, out);
        }
        Pattern::Times(ps) => {
            out.push(PatTok::Op(OpTok::Times(ps.len())));
            for p in ps {
                flatten_pattern(p, out);
            }
        }
        Pattern::Plus(ps) => {
            out.push(PatTok::Op(OpTok::Plus(ps.len())));
            for p in ps {
                flatten_pattern(p, out);
            }
        }
    }
}

fn flatten_subject(e: &Expr, out: &mut Vec<SubTok>) {
    match e {
        Expr::Symbol(op) => out.push(SubTok::Sym(op.clone())),
        Expr::Transpose(inner) => {
            out.push(SubTok::Op(OpTok::Transpose));
            flatten_subject(inner, out);
        }
        Expr::Inverse(inner) => {
            out.push(SubTok::Op(OpTok::Inverse));
            flatten_subject(inner, out);
        }
        Expr::InverseTranspose(inner) => {
            out.push(SubTok::Op(OpTok::InverseTranspose));
            flatten_subject(inner, out);
        }
        Expr::Times(es) => {
            out.push(SubTok::Op(OpTok::Times(es.len())));
            for e in es {
                flatten_subject(e, out);
            }
        }
        Expr::Plus(es) => {
            out.push(SubTok::Op(OpTok::Plus(es.len())));
            for e in es {
                flatten_subject(e, out);
            }
        }
    }
}

#[derive(Debug)]
struct Node {
    /// Exact-operator edges: `(token, child index)`.
    op_edges: Vec<(OpTok, usize)>,
    /// Wildcard edges: `(variable, child index)`.
    wild_edges: Vec<(Var, usize)>,
    /// Patterns that terminate at this node.
    terminal: Vec<usize>,
}

impl Node {
    fn new() -> Self {
        Node {
            op_edges: Vec::new(),
            wild_edges: Vec::new(),
            terminal: Vec::new(),
        }
    }
}

/// A successful match: the pattern's payload plus variable bindings.
#[derive(Clone, Debug)]
pub struct Match<'net, P> {
    /// The payload stored with the matching pattern.
    pub payload: &'net P,
    /// Operands bound to the pattern's variables.
    pub bindings: Bindings,
}

/// A many-to-one matcher holding a set of patterns with payloads.
///
/// Inserting patterns builds a trie; [`DiscriminationNet::matches`]
/// returns *all* patterns that match a subject expression, with their
/// variable bindings, in insertion order.
#[derive(Debug)]
pub struct DiscriminationNet<P> {
    nodes: Vec<Node>,
    payloads: Vec<P>,
}

impl<P> Default for DiscriminationNet<P> {
    fn default() -> Self {
        DiscriminationNet::new()
    }
}

impl<P> DiscriminationNet<P> {
    /// Creates an empty net.
    pub fn new() -> Self {
        DiscriminationNet {
            nodes: vec![Node::new()],
            payloads: Vec::new(),
        }
    }

    /// The number of patterns stored.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Whether the net contains no patterns.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Inserts a pattern with an associated payload, returning the
    /// pattern's index.
    pub fn insert(&mut self, pattern: Pattern, payload: P) -> usize {
        let mut tokens = Vec::new();
        flatten_pattern(&pattern, &mut tokens);
        let mut node = 0;
        for tok in tokens {
            node = match tok {
                PatTok::Op(op) => {
                    if let Some(&(_, child)) =
                        self.nodes[node].op_edges.iter().find(|(t, _)| *t == op)
                    {
                        child
                    } else {
                        let child = self.nodes.len();
                        self.nodes.push(Node::new());
                        self.nodes[node].op_edges.push((op, child));
                        child
                    }
                }
                PatTok::Wild(v) => {
                    if let Some(&(_, child)) =
                        self.nodes[node].wild_edges.iter().find(|(w, _)| *w == v)
                    {
                        child
                    } else {
                        let child = self.nodes.len();
                        self.nodes.push(Node::new());
                        self.nodes[node].wild_edges.push((v, child));
                        child
                    }
                }
            };
        }
        let id = self.payloads.len();
        self.payloads.push(payload);
        self.nodes[node].terminal.push(id);
        id
    }

    /// Finds all patterns matching `expr`, with bindings.
    ///
    /// The subject is matched *as is* (no normalization); callers that
    /// want normalized matching should normalize first. A single
    /// traversal with bounded backtracking visits every matching
    /// pattern, so the cost is independent of the number of patterns in
    /// the net.
    pub fn matches(&self, expr: &Expr) -> Vec<Match<'_, P>> {
        let mut flat = Vec::new();
        flatten_subject(expr, &mut flat);
        let mut out: Vec<(usize, Bindings)> = Vec::new();
        let mut bindings = Bindings::new();
        self.walk(0, &flat, 0, &mut bindings, &mut |id, b| {
            out.push((id, b.clone()));
        });
        // Report matches in pattern insertion order for determinism.
        out.sort_by_key(|(id, _)| *id);
        out.into_iter()
            .map(|(id, bindings)| Match {
                payload: &self.payloads[id],
                bindings,
            })
            .collect()
    }

    /// Streaming query of the binary product `left · right` — the GMC
    /// hot path (paper Fig. 4 line 6) — without constructing an owned
    /// `Expr::Times`.
    ///
    /// The subject flatterm is built in `scratch`, whose buffer is
    /// reused across queries, so a warm scratch makes the query
    /// allocation-free. Matches are yielded to `visit` as
    /// `(payload, bindings)` in **trie order**, which is *not* the
    /// insertion order reported by [`DiscriminationNet::matches`];
    /// order-sensitive callers must disambiguate via the payload (see
    /// `gmc_kernels::KernelRegistry::best_product_match`). The borrowed
    /// bindings are only valid for the duration of the call.
    ///
    /// The subject is the product [`Expr::times`] would build from the
    /// two factors: a factor that is itself a product contributes its
    /// factors to the parent (the GMC DP never produces one, but the
    /// equivalence with [`matches`](Self::matches) holds regardless).
    pub fn match_product_with<F>(
        &self,
        left: &Expr,
        right: &Expr,
        scratch: &mut FlatTermScratch,
        mut visit: F,
    ) where
        F: FnMut(&P, &Bindings),
    {
        fn arity(e: &Expr) -> usize {
            match e {
                Expr::Times(fs) => fs.len(),
                _ => 1,
            }
        }
        fn flatten_factor(e: &Expr, out: &mut Vec<SubTok>) {
            match e {
                Expr::Times(fs) => {
                    for f in fs {
                        flatten_subject(f, out);
                    }
                }
                other => flatten_subject(other, out),
            }
        }
        scratch.flat.clear();
        scratch
            .flat
            .push(SubTok::Op(OpTok::Times(arity(left) + arity(right))));
        flatten_factor(left, &mut scratch.flat);
        flatten_factor(right, &mut scratch.flat);
        let mut bindings = Bindings::new();
        self.walk(0, &scratch.flat, 0, &mut bindings, &mut |id, b| {
            visit(&self.payloads[id], b);
        });
    }

    /// Whether any pattern matches `expr`.
    pub fn any_match(&self, expr: &Expr) -> bool {
        !self.matches(expr).is_empty()
    }

    fn walk(
        &self,
        node: usize,
        flat: &[SubTok],
        pos: usize,
        bindings: &mut Bindings,
        visit: &mut dyn FnMut(usize, &Bindings),
    ) {
        if pos == flat.len() {
            for &id in &self.nodes[node].terminal {
                visit(id, bindings);
            }
            return;
        }
        match &flat[pos] {
            SubTok::Op(op) => {
                for &(tok, child) in &self.nodes[node].op_edges {
                    if tok == *op {
                        self.walk(child, flat, pos + 1, bindings, visit);
                    }
                }
            }
            SubTok::Sym(operand) => {
                for &(var, child) in &self.nodes[node].wild_edges {
                    let was_bound = bindings.get(var).is_some();
                    if bindings.bind(var, operand) {
                        self.walk(child, flat, pos + 1, bindings, visit);
                        if !was_bound {
                            bindings.unbind(var);
                        }
                    }
                }
            }
        }
    }
}

/// A reusable flatterm buffer for [`DiscriminationNet::match_product_with`].
///
/// Queries clear and refill the buffer, so its capacity — a handful of
/// tokens for the bounded products the GMC DP emits — is allocated once
/// and amortized over the O(n³) split candidates of a solve.
#[derive(Debug, Default)]
pub struct FlatTermScratch {
    flat: Vec<SubTok>,
}

impl FlatTermScratch {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        FlatTermScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::Operand;

    fn x() -> Var {
        Var::new(0)
    }

    fn y() -> Var {
        Var::new(1)
    }

    #[test]
    fn empty_net() {
        let net: DiscriminationNet<&str> = DiscriminationNet::new();
        assert!(net.is_empty());
        let a = Operand::square("A", 2);
        assert!(net.matches(&a.expr()).is_empty());
    }

    #[test]
    fn single_pattern_product() {
        let mut net = DiscriminationNet::new();
        net.insert(Pattern::times2(Pattern::var(x()), Pattern::var(y())), "mm");
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 3, 4);
        let hits = net.matches(&(a.expr() * b.expr()));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].bindings.get(x()).unwrap().name(), "A");
        assert_eq!(hits[0].bindings.get(y()).unwrap().name(), "B");
        // A transposed product does not match the plain pattern.
        assert!(net.matches(&(a.transpose() * b.expr())).is_empty());
    }

    #[test]
    fn many_to_one_returns_all() {
        let mut net = DiscriminationNet::new();
        net.insert(
            Pattern::times2(Pattern::var(x()), Pattern::var(y())),
            "general",
        );
        net.insert(
            Pattern::times2(Pattern::var(x()), Pattern::var(x())),
            "squared",
        );
        let a = Operand::square("A", 3);
        let hits = net.matches(&(a.expr() * a.expr()));
        let names: Vec<_> = hits.iter().map(|m| *m.payload).collect();
        assert_eq!(names, vec!["general", "squared"]);

        let b = Operand::square("B", 3);
        let hits = net.matches(&(a.expr() * b.expr()));
        let names: Vec<_> = hits.iter().map(|m| *m.payload).collect();
        assert_eq!(names, vec!["general"]);
    }

    #[test]
    fn non_linear_syrk_pattern() {
        let mut net = DiscriminationNet::new();
        net.insert(
            Pattern::times2(Pattern::transpose(Pattern::var(x())), Pattern::var(x())),
            "syrk",
        );
        let a = Operand::matrix("A", 5, 3);
        let b = Operand::matrix("B", 5, 3);
        assert_eq!(net.matches(&(a.transpose() * a.expr())).len(), 1);
        assert!(net.matches(&(a.transpose() * b.expr())).is_empty());
    }

    #[test]
    fn unary_operator_tokens_distinguished() {
        let mut net = DiscriminationNet::new();
        net.insert(
            Pattern::times2(Pattern::inverse(Pattern::var(x())), Pattern::var(y())),
            "solve",
        );
        net.insert(
            Pattern::times2(
                Pattern::inverse_transpose(Pattern::var(x())),
                Pattern::var(y()),
            ),
            "solve-t",
        );
        let a = Operand::square("A", 3);
        let b = Operand::matrix("B", 3, 2);
        let hits = net.matches(&(a.inverse() * b.expr()));
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].payload, "solve");
        let hits = net.matches(&(a.inverse_transpose() * b.expr()));
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].payload, "solve-t");
    }

    #[test]
    fn arity_must_agree() {
        let mut net = DiscriminationNet::new();
        net.insert(Pattern::times2(Pattern::var(x()), Pattern::var(y())), "mm");
        let a = Operand::square("A", 3);
        let b = Operand::square("B", 3);
        let c = Operand::square("C", 3);
        // Ternary product does not match a binary pattern.
        assert!(net.matches(&(a.expr() * b.expr() * c.expr())).is_empty());
    }

    #[test]
    fn bare_symbol_pattern() {
        let mut net = DiscriminationNet::new();
        net.insert(Pattern::var(x()), "copy");
        net.insert(Pattern::transpose(Pattern::var(x())), "transpose");
        let a = Operand::matrix("A", 2, 5);
        assert_eq!(*net.matches(&a.expr())[0].payload, "copy");
        assert_eq!(*net.matches(&a.transpose())[0].payload, "transpose");
    }

    #[test]
    fn plus_patterns() {
        let mut net = DiscriminationNet::new();
        net.insert(Pattern::plus2(Pattern::var(x()), Pattern::var(y())), "add");
        let a = Operand::square("A", 3);
        let b = Operand::square("B", 3);
        assert_eq!(net.matches(&(a.expr() + b.expr())).len(), 1);
        assert!(net.matches(&(a.expr() * b.expr())).is_empty());
    }

    #[test]
    fn backtracking_restores_bindings() {
        // Two patterns sharing a prefix: Times(x, x) and Times(x, y).
        // Matching A·B first tries the x-x edge (fails on B) and must
        // cleanly backtrack before binding y.
        let mut net = DiscriminationNet::new();
        net.insert(Pattern::times2(Pattern::var(x()), Pattern::var(x())), "xx");
        net.insert(Pattern::times2(Pattern::var(x()), Pattern::var(y())), "xy");
        let a = Operand::square("A", 3);
        let b = Operand::square("B", 3);
        let hits = net.matches(&(a.expr() * b.expr()));
        assert_eq!(hits.len(), 1);
        assert_eq!(*hits[0].payload, "xy");
        assert_eq!(hits[0].bindings.get(x()).unwrap().name(), "A");
        assert_eq!(hits[0].bindings.get(y()).unwrap().name(), "B");
    }

    #[test]
    fn match_product_streams_without_owned_times() {
        let mut net = DiscriminationNet::new();
        net.insert(
            Pattern::times2(Pattern::var(x()), Pattern::var(y())),
            "general",
        );
        net.insert(
            Pattern::times2(Pattern::var(x()), Pattern::var(x())),
            "squared",
        );
        let a = Operand::square("A", 3);
        let mut scratch = FlatTermScratch::new();
        let mut seen = Vec::new();
        net.match_product_with(&a.expr(), &a.expr(), &mut scratch, |p, b| {
            seen.push((*p, b.get(x()).unwrap().name().to_owned()));
        });
        seen.sort();
        assert_eq!(
            seen,
            vec![("general", "A".to_owned()), ("squared", "A".to_owned())]
        );
        // The same scratch serves queries over different operands.
        let b = Operand::square("B", 3);
        let mut count = 0;
        net.match_product_with(&a.expr(), &b.expr(), &mut scratch, |_, _| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn match_product_flattens_nested_product_factors() {
        // A factor that is itself a product behaves as in
        // Expr::times: the binary pattern must NOT match the
        // resulting ternary product, exactly like `matches`.
        let mut net = DiscriminationNet::new();
        net.insert(Pattern::times2(Pattern::var(x()), Pattern::var(y())), "mm");
        let a = Operand::square("A", 3);
        let b = Operand::square("B", 3);
        let c = Operand::square("C", 3);
        let left = a.expr() * b.expr();
        assert!(net
            .matches(&Expr::times([left.clone(), c.expr()]))
            .is_empty());
        let mut scratch = FlatTermScratch::new();
        let mut count = 0;
        net.match_product_with(&left, &c.expr(), &mut scratch, |_, _| count += 1);
        assert_eq!(count, 0);
    }

    #[test]
    fn match_product_agrees_with_matches_on_unary_factors() {
        let mut net = DiscriminationNet::new();
        net.insert(
            Pattern::times2(Pattern::inverse(Pattern::var(x())), Pattern::var(y())),
            "solve",
        );
        net.insert(
            Pattern::times2(Pattern::var(x()), Pattern::var(y())),
            "general",
        );
        let a = Operand::square("A", 3);
        let b = Operand::matrix("B", 3, 2);
        let owned = net.matches(&(a.inverse() * b.expr()));
        let mut streamed = Vec::new();
        let mut scratch = FlatTermScratch::new();
        net.match_product_with(&a.inverse(), &b.expr(), &mut scratch, |p, _| {
            streamed.push(*p);
        });
        streamed.sort_unstable();
        let mut owned_payloads: Vec<&str> = owned.iter().map(|m| *m.payload).collect();
        owned_payloads.sort_unstable();
        assert_eq!(streamed, owned_payloads);
    }

    #[test]
    fn nested_unary_patterns() {
        // TRSM-like nested pattern: (x⁻¹ y) where x itself appears
        // transposed in the subject must not match.
        let mut net = DiscriminationNet::new();
        net.insert(
            Pattern::times2(Pattern::inverse(Pattern::var(x())), Pattern::var(y())),
            "trsm",
        );
        let a = Operand::square("A", 3);
        let b = Operand::matrix("B", 3, 2);
        assert!(net
            .matches(&(Expr::inverse(Expr::transpose(a.expr())) * b.expr()))
            .is_empty());
    }

    use gmc_expr::Expr;
}
