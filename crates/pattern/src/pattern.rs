//! Pattern syntax and variable bindings.

use gmc_expr::Operand;
use std::fmt;

/// A pattern variable, identified by a small index.
///
/// Variables bind leaf operands of the subject expression. Using the
/// same variable twice makes the pattern non-linear (both occurrences
/// must bind the same operand).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u8);

impl Var {
    /// Creates a variable with the given index (< 16).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`; kernel patterns never need more than a
    /// handful of variables.
    pub const fn new(index: u8) -> Self {
        assert!(index < 16, "pattern variable index out of range");
        Var(index)
    }

    /// The variable's index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A structural pattern over matrix expressions.
///
/// Mirrors the shape of [`gmc_expr::Expr`], with [`Pattern::var`] in
/// place of concrete operands. Products and sums have fixed arity.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Matches a single leaf operand and binds it.
    Wildcard(Var),
    /// Matches `eᵀ`.
    Transpose(Box<Pattern>),
    /// Matches `e⁻¹`.
    Inverse(Box<Pattern>),
    /// Matches `e⁻ᵀ`.
    InverseTranspose(Box<Pattern>),
    /// Matches an n-ary product with exactly these factors.
    Times(Vec<Pattern>),
    /// Matches an n-ary sum with exactly these terms.
    Plus(Vec<Pattern>),
}

impl Pattern {
    /// A variable pattern.
    pub fn var(v: Var) -> Pattern {
        Pattern::Wildcard(v)
    }

    /// `pᵀ`.
    pub fn transpose(p: Pattern) -> Pattern {
        Pattern::Transpose(Box::new(p))
    }

    /// `p⁻¹`.
    pub fn inverse(p: Pattern) -> Pattern {
        Pattern::Inverse(Box::new(p))
    }

    /// `p⁻ᵀ`.
    pub fn inverse_transpose(p: Pattern) -> Pattern {
        Pattern::InverseTranspose(Box::new(p))
    }

    /// A binary product pattern.
    pub fn times2(left: Pattern, right: Pattern) -> Pattern {
        Pattern::Times(vec![left, right])
    }

    /// A binary sum pattern.
    pub fn plus2(left: Pattern, right: Pattern) -> Pattern {
        Pattern::Plus(vec![left, right])
    }

    /// The variables of the pattern, in first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars
    }

    fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Pattern::Wildcard(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Pattern::Transpose(p) | Pattern::Inverse(p) | Pattern::InverseTranspose(p) => {
                p.collect_vars(out)
            }
            Pattern::Times(ps) | Pattern::Plus(ps) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
        }
    }

    /// The number of nodes in the pattern.
    pub fn node_count(&self) -> usize {
        match self {
            Pattern::Wildcard(_) => 1,
            Pattern::Transpose(p) | Pattern::Inverse(p) | Pattern::InverseTranspose(p) => {
                1 + p.node_count()
            }
            Pattern::Times(ps) | Pattern::Plus(ps) => {
                1 + ps.iter().map(Pattern::node_count).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Wildcard(v) => write!(f, "{v}"),
            Pattern::Transpose(p) => write!(f, "({p})^T"),
            Pattern::Inverse(p) => write!(f, "({p})^-1"),
            Pattern::InverseTranspose(p) => write!(f, "({p})^-T"),
            Pattern::Times(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
            Pattern::Plus(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

/// The operands bound to pattern variables by a successful match.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings {
    slots: [Option<Operand>; 16],
}

impl Bindings {
    /// An empty binding set.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// The operand bound to `v`, if any.
    pub fn get(&self, v: Var) -> Option<&Operand> {
        self.slots[v.index()].as_ref()
    }

    /// Binds `v` to `op`. Returns `false` (and leaves the bindings
    /// unchanged) if `v` is already bound to a *different* operand —
    /// the non-linearity check.
    pub fn bind(&mut self, v: Var, op: &Operand) -> bool {
        match &self.slots[v.index()] {
            Some(existing) => existing == op,
            None => {
                self.slots[v.index()] = Some(op.clone());
                true
            }
        }
    }

    /// Removes the binding for `v` (used when backtracking).
    pub(crate) fn unbind(&mut self, v: Var) {
        self.slots[v.index()] = None;
    }

    /// Iterates over `(variable, operand)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Operand)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|op| (Var(i as u8), op)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_first_occurrence_order() {
        let x = Var::new(1);
        let y = Var::new(0);
        let p = Pattern::times2(
            Pattern::transpose(Pattern::var(x)),
            Pattern::times2(Pattern::var(y), Pattern::var(x)),
        );
        assert_eq!(p.variables(), vec![x, y]);
    }

    #[test]
    fn node_count() {
        let x = Var::new(0);
        let p = Pattern::times2(Pattern::transpose(Pattern::var(x)), Pattern::var(x));
        assert_eq!(p.node_count(), 4);
    }

    #[test]
    fn bindings_non_linearity() {
        let a = Operand::square("A", 3);
        let b = Operand::square("B", 3);
        let x = Var::new(0);
        let mut bind = Bindings::new();
        assert!(bind.bind(x, &a));
        assert!(bind.bind(x, &a)); // same operand: fine
        assert!(!bind.bind(x, &b)); // different operand: rejected
        assert_eq!(bind.get(x), Some(&a));
    }

    #[test]
    fn display() {
        let x = Var::new(0);
        let y = Var::new(1);
        let p = Pattern::times2(Pattern::inverse(Pattern::var(x)), Pattern::var(y));
        assert_eq!(p.to_string(), "(?0)^-1 ?1");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn var_index_out_of_range() {
        let _ = Var::new(16);
    }
}
