//! Syntactic many-to-one pattern matching with discrimination nets.
//!
//! The GMC algorithm selects kernels by matching the bounded expressions
//! produced during dynamic programming (`f1(A) · f2(B)`, at most five
//! nodes — paper Sec. 3.4) against the set of kernel patterns `K`
//! (paper Table 1). The paper uses MatchPy for this; this crate provides
//! the same facility natively: patterns are compiled into a
//! *discrimination net* (a trie over flattened term representations,
//! see Christian 1993; Gräf 1991 — the paper's refs [12, 23]), so that
//! one traversal of the subject expression finds **all** matching
//! patterns. The complexity is bounded by the size of the patterns, not
//! by their number, which yields the `O(1)` matching cost the paper's
//! complexity analysis relies on.
//!
//! Pattern variables ([`Var`]) bind *operands* (leaf symbols). Patterns
//! may be non-linear: repeating a variable requires the positions to bind
//! the same operand, which expresses kernels like `SYRK` (`XᵀX`).
//!
//! # Example
//!
//! ```
//! use gmc_expr::{Operand, Expr};
//! use gmc_pattern::{DiscriminationNet, Pattern, Var};
//!
//! let x = Var::new(0);
//! let y = Var::new(1);
//! let mut net = DiscriminationNet::new();
//! net.insert(Pattern::times2(Pattern::var(x), Pattern::var(y)), "gemm-nn");
//! net.insert(Pattern::times2(Pattern::transpose(Pattern::var(x)), Pattern::var(x)), "syrk-t");
//!
//! let a = Operand::matrix("A", 4, 3);
//! let expr = a.transpose() * a.expr();
//! let hits = net.matches(&expr);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(*hits[0].payload, "syrk-t");
//! assert_eq!(hits[0].bindings.get(x).unwrap().name(), "A");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod net;
mod pattern;

pub use net::{DiscriminationNet, FlatTermScratch, Match};
pub use pattern::{Bindings, Pattern, Var};
