//! Fully-instantiated kernel operations: the payload of generated code.

use gmc_expr::{Operand, Shape};
use std::fmt;

/// Which side the structured operand multiplies from (BLAS `SIDE`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The structured operand is on the left.
    Left,
    /// The structured operand is on the right.
    Right,
}

/// Which triangle of a triangular operand is populated (BLAS `UPLO`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Uplo {
    /// Lower triangular.
    Lower,
    /// Upper triangular.
    Upper,
}

/// How an explicit inverse is computed (which structure is exploited).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvKind {
    /// LU-based inverse of a general matrix (`2n³` FLOPs).
    General,
    /// Cholesky-based inverse of an SPD matrix (`n³`).
    Spd,
    /// Triangular inverse (`n³/3`).
    Triangular(Uplo),
    /// Reciprocal diagonal (`n`).
    Diagonal,
}

/// The kernel family, i.e. which routine of the substrate is invoked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelFamily {
    /// General matrix-matrix multiply.
    Gemm,
    /// Triangular matrix-matrix multiply.
    Trmm,
    /// Symmetric matrix-matrix multiply.
    Symm,
    /// Triangular solve with multiple right-hand sides.
    Trsm,
    /// Symmetric rank-k update (`XᵀX` / `XXᵀ`).
    Syrk,
    /// General solve (LU-based), `op(A)⁻¹B` or `B·op(A)⁻¹`.
    Gesv,
    /// SPD solve (Cholesky-based).
    Posv,
    /// Diagonal multiply or solve.
    Diag,
    /// General matrix-vector multiply.
    Gemv,
    /// Triangular matrix-vector multiply.
    Trmv,
    /// Symmetric matrix-vector multiply.
    Symv,
    /// Triangular solve with a single right-hand side.
    Trsv,
    /// Outer product `x·yᵀ`.
    Ger,
    /// Inner product `xᵀ·y`.
    Dot,
    /// Copy (identity multiply).
    Copy,
    /// Explicit matrix inversion (GETRI / POTRI / TRTRI / reciprocal
    /// diagonal). Not part of the GMC kernel registry — the optimizer
    /// always prefers solves — but required to model the *naive*
    /// baseline implementations (`inv(A)*B`, paper Sec. 4).
    Inv,
    /// Composite kernel for `op(A)⁻¹·op(B)⁻¹` (explicit inverse + solve);
    /// see paper Sec. 5 — such kernels do not exist in BLAS/LAPACK and
    /// are assembled from `GETRI` + `GESV`.
    InvPair,
}

impl KernelFamily {
    /// The conventional routine name, lower case (as used in the Julia
    /// emitter, e.g. `gemm!`).
    pub fn routine(&self) -> &'static str {
        match self {
            KernelFamily::Gemm => "gemm",
            KernelFamily::Trmm => "trmm",
            KernelFamily::Symm => "symm",
            KernelFamily::Trsm => "trsm",
            KernelFamily::Syrk => "syrk",
            KernelFamily::Gesv => "gesv",
            KernelFamily::Posv => "posv",
            KernelFamily::Diag => "dgmm",
            KernelFamily::Gemv => "gemv",
            KernelFamily::Trmv => "trmv",
            KernelFamily::Symv => "symv",
            KernelFamily::Trsv => "trsv",
            KernelFamily::Ger => "ger",
            KernelFamily::Dot => "dot",
            KernelFamily::Copy => "copy",
            KernelFamily::Inv => "inv",
            KernelFamily::InvPair => "invpair",
        }
    }
}

impl fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.routine())
    }
}

/// A kernel operation with concrete operands — one step of a generated
/// program. Produced by matching a kernel against an expression; consumed
/// by the code emitters of `gmc-codegen` and the interpreter of
/// `gmc-runtime`.
#[derive(Clone, Debug, PartialEq)]
pub enum KernelOp {
    /// `C := op(A)·op(B)` (GEMM).
    Gemm {
        /// Transpose A.
        ta: bool,
        /// Transpose B.
        tb: bool,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `C := op(A)·B` or `B·op(A)` with `A` triangular (TRMM).
    Trmm {
        /// Side of the triangular operand.
        side: Side,
        /// Which triangle of `A` is stored.
        uplo: Uplo,
        /// Transpose A.
        trans: bool,
        /// The triangular operand.
        a: Operand,
        /// The general operand.
        b: Operand,
    },
    /// `C := A·B` or `B·A` with `A` symmetric (SYMM).
    Symm {
        /// Side of the symmetric operand.
        side: Side,
        /// The symmetric operand.
        a: Operand,
        /// The general operand.
        b: Operand,
    },
    /// `X := op(A)⁻¹·op(B)` or `op(B)·op(A)⁻¹` with `A` triangular
    /// (TRSM; a transposed right-hand side is handled with a transpose
    /// copy before the solve).
    Trsm {
        /// Side of the triangular operand.
        side: Side,
        /// Which triangle of `A` is stored.
        uplo: Uplo,
        /// Transpose A.
        trans: bool,
        /// Transpose the right-hand side first.
        tb: bool,
        /// The triangular operand.
        a: Operand,
        /// The right-hand side.
        b: Operand,
    },
    /// `C := AᵀA` (`trans`) or `A·Aᵀ` (SYRK).
    Syrk {
        /// Whether the transposed operand comes first (`AᵀA`).
        trans: bool,
        /// The operand.
        a: Operand,
    },
    /// `X := op(A)⁻¹·op(B)` or `op(B)·op(A)⁻¹` for general `A`
    /// (GETRF+GETRS).
    Gesv {
        /// Side of the inverted operand.
        side: Side,
        /// Transpose A (solve with `Aᵀ`).
        trans: bool,
        /// Transpose the right-hand side first.
        tb: bool,
        /// The inverted operand.
        a: Operand,
        /// The right-hand side.
        b: Operand,
    },
    /// `X := A⁻¹·op(B)` or `op(B)·A⁻¹` for SPD `A` (POTRF+POTRS).
    Posv {
        /// Side of the inverted operand.
        side: Side,
        /// Transpose the right-hand side first.
        tb: bool,
        /// The SPD operand.
        a: Operand,
        /// The right-hand side.
        b: Operand,
    },
    /// `C := D·op(B)`, `op(B)·D`, `D⁻¹·op(B)` or `op(B)·D⁻¹` with `D`
    /// diagonal.
    Diag {
        /// Side of the diagonal operand.
        side: Side,
        /// Whether to solve (`D⁻¹`) rather than multiply.
        inv: bool,
        /// Transpose the general operand first.
        tb: bool,
        /// The diagonal operand.
        d: Operand,
        /// The general operand.
        b: Operand,
    },
    /// `y := op(A)·x` (GEMV).
    Gemv {
        /// Transpose A.
        trans: bool,
        /// The matrix.
        a: Operand,
        /// The vector.
        x: Operand,
    },
    /// `y := op(A)·x` with `A` triangular (TRMV).
    Trmv {
        /// Which triangle of `A` is stored.
        uplo: Uplo,
        /// Transpose A.
        trans: bool,
        /// The triangular matrix.
        a: Operand,
        /// The vector.
        x: Operand,
    },
    /// `y := A·x` with `A` symmetric (SYMV).
    Symv {
        /// The symmetric matrix.
        a: Operand,
        /// The vector.
        x: Operand,
    },
    /// `y := op(A)⁻¹·x` with `A` triangular (TRSV).
    Trsv {
        /// Which triangle of `A` is stored.
        uplo: Uplo,
        /// Transpose A.
        trans: bool,
        /// The triangular matrix.
        a: Operand,
        /// The vector.
        x: Operand,
    },
    /// `C := x·yᵀ` (GER-style outer product).
    Ger {
        /// Column vector.
        x: Operand,
        /// Column vector (transposed in the product).
        y: Operand,
    },
    /// `s := xᵀ·y` (DOT).
    Dot {
        /// Left vector.
        x: Operand,
        /// Right vector.
        y: Operand,
    },
    /// `C := B` where the identity operand is eliminated.
    Copy {
        /// The surviving operand.
        b: Operand,
    },
    /// `C := op(A)⁻¹` — explicit inversion, specialized by structure.
    Inv {
        /// How the inverse is computed (which factorization).
        kind: InvKind,
        /// Transpose the result (`A⁻ᵀ`).
        trans: bool,
        /// The operand to invert.
        a: Operand,
    },
    /// `X := op(A)⁻¹·op(B)⁻¹`: composite inverse-pair kernel
    /// (`GETRI` on `op(B)` followed by `GESV` with `op(A)`).
    InvPair {
        /// Transpose A.
        ta: bool,
        /// Transpose B.
        tb: bool,
        /// The left inverted operand.
        a: Operand,
        /// The right inverted operand.
        b: Operand,
    },
}

impl KernelOp {
    /// The family of the operation.
    pub fn family(&self) -> KernelFamily {
        match self {
            KernelOp::Gemm { .. } => KernelFamily::Gemm,
            KernelOp::Trmm { .. } => KernelFamily::Trmm,
            KernelOp::Symm { .. } => KernelFamily::Symm,
            KernelOp::Trsm { .. } => KernelFamily::Trsm,
            KernelOp::Syrk { .. } => KernelFamily::Syrk,
            KernelOp::Gesv { .. } => KernelFamily::Gesv,
            KernelOp::Posv { .. } => KernelFamily::Posv,
            KernelOp::Diag { .. } => KernelFamily::Diag,
            KernelOp::Gemv { .. } => KernelFamily::Gemv,
            KernelOp::Trmv { .. } => KernelFamily::Trmv,
            KernelOp::Symv { .. } => KernelFamily::Symv,
            KernelOp::Trsv { .. } => KernelFamily::Trsv,
            KernelOp::Ger { .. } => KernelFamily::Ger,
            KernelOp::Dot { .. } => KernelFamily::Dot,
            KernelOp::Copy { .. } => KernelFamily::Copy,
            KernelOp::Inv { .. } => KernelFamily::Inv,
            KernelOp::InvPair { .. } => KernelFamily::InvPair,
        }
    }

    /// The shape of the operation's result.
    pub fn result_shape(&self) -> Shape {
        match self {
            KernelOp::Gemm { ta, tb, a, b } => {
                let sa = apply_t(*ta, a.shape());
                let sb = apply_t(*tb, b.shape());
                Shape::new(sa.rows(), sb.cols())
            }
            KernelOp::Trmm { b, .. } => b.shape(),
            KernelOp::Trsm { tb, b, .. } => apply_t(*tb, b.shape()),
            KernelOp::Symm { b, .. } => b.shape(),
            KernelOp::Posv { tb, b, .. }
            | KernelOp::Diag { tb, b, .. }
            | KernelOp::Gesv { tb, b, .. } => apply_t(*tb, b.shape()),
            KernelOp::Syrk { trans, a } => {
                let n = if *trans {
                    a.shape().cols()
                } else {
                    a.shape().rows()
                };
                Shape::square(n)
            }
            KernelOp::Gemv { trans, a, .. } => {
                let sa = apply_t(*trans, a.shape());
                Shape::col_vector(sa.rows())
            }
            KernelOp::Trmv { a, .. } | KernelOp::Symv { a, .. } | KernelOp::Trsv { a, .. } => {
                Shape::col_vector(a.shape().rows())
            }
            KernelOp::Ger { x, y } => Shape::new(x.shape().rows(), y.shape().rows()),
            KernelOp::Dot { .. } => Shape::new(1, 1),
            KernelOp::Copy { b } => b.shape(),
            KernelOp::Inv { a, .. } => Shape::square(a.shape().rows()),
            KernelOp::InvPair { a, .. } => Shape::square(a.shape().rows()),
        }
    }

    /// The number of floating point operations, following the paper's
    /// conventions (Table 1 and Sec. 2 footnote): `GEMM` costs `2mnk`,
    /// the structured level-3 kernels (`TRMM`, `SYMM`, `TRSM`) cost
    /// `m²n`, `SYRK` costs `m²k`, solvers add their factorization cost
    /// (`2/3·m³` for LU, `1/3·m³` for Cholesky), and explicit general
    /// inversion costs `2·m³`.
    pub fn flops(&self) -> f64 {
        match self {
            KernelOp::Gemm { ta, tb, a, b } => {
                let sa = apply_t(*ta, a.shape());
                let sb = apply_t(*tb, b.shape());
                let (m, k, n) = (sa.rows() as f64, sa.cols() as f64, sb.cols() as f64);
                2.0 * m * n * k
            }
            KernelOp::Trmm { a, b, .. } | KernelOp::Symm { a, b, .. } => {
                let m = a.shape().rows() as f64;
                let n = other_dim(a, b) as f64;
                m * m * n
            }
            KernelOp::Trsm { a, b, .. } => {
                let m = a.shape().rows() as f64;
                let n = other_dim(a, b) as f64;
                m * m * n
            }
            KernelOp::Syrk { trans, a } => {
                let s = a.shape();
                let (m, k) = if *trans {
                    (s.cols() as f64, s.rows() as f64)
                } else {
                    (s.rows() as f64, s.cols() as f64)
                };
                m * m * k
            }
            KernelOp::Gesv { a, b, .. } => {
                let m = a.shape().rows() as f64;
                let n = other_dim(a, b) as f64;
                2.0 / 3.0 * m * m * m + 2.0 * m * m * n
            }
            KernelOp::Posv { a, b, .. } => {
                let m = a.shape().rows() as f64;
                let n = other_dim(a, b) as f64;
                1.0 / 3.0 * m * m * m + 2.0 * m * m * n
            }
            KernelOp::Diag { b, .. } => (b.shape().rows() * b.shape().cols()) as f64,
            KernelOp::Gemv { a, .. } => {
                let s = a.shape();
                2.0 * (s.rows() * s.cols()) as f64
            }
            KernelOp::Trmv { a, .. } | KernelOp::Trsv { a, .. } => {
                let n = a.shape().rows() as f64;
                n * n
            }
            KernelOp::Symv { a, .. } => {
                let n = a.shape().rows() as f64;
                2.0 * n * n
            }
            KernelOp::Ger { x, y } => 2.0 * (x.shape().rows() * y.shape().rows()) as f64,
            KernelOp::Dot { x, .. } => 2.0 * x.shape().rows() as f64,
            KernelOp::Copy { .. } => 0.0,
            KernelOp::Inv { kind, a, .. } => {
                let n = a.shape().rows() as f64;
                match kind {
                    // GETRF + GETRI.
                    InvKind::General => 2.0 * n * n * n,
                    // POTRF + POTRI.
                    InvKind::Spd => n * n * n,
                    // TRTRI.
                    InvKind::Triangular(_) => n * n * n / 3.0,
                    // Reciprocal of the diagonal.
                    InvKind::Diagonal => n,
                }
            }
            KernelOp::InvPair { a, .. } => {
                // GETRI on one operand (2m³) + GESV with the other
                // (2/3·m³ + 2·m³).
                let m = a.shape().rows() as f64;
                (2.0 + 2.0 / 3.0 + 2.0) * m * m * m
            }
        }
    }

    /// The operands referenced by this operation, in argument order.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            KernelOp::Gemm { a, b, .. }
            | KernelOp::Trmm { a, b, .. }
            | KernelOp::Symm { a, b, .. }
            | KernelOp::Trsm { a, b, .. }
            | KernelOp::Gesv { a, b, .. }
            | KernelOp::Posv { a, b, .. }
            | KernelOp::InvPair { a, b, .. } => vec![a, b],
            KernelOp::Diag { d, b, .. } => vec![d, b],
            KernelOp::Syrk { a, .. } => vec![a],
            KernelOp::Gemv { a, x, .. }
            | KernelOp::Trmv { a, x, .. }
            | KernelOp::Symv { a, x }
            | KernelOp::Trsv { a, x, .. } => vec![a, x],
            KernelOp::Ger { x, y } | KernelOp::Dot { x, y } => vec![x, y],
            KernelOp::Copy { b } => vec![b],
            KernelOp::Inv { a, .. } => vec![a],
        }
    }

    /// Visits the operands referenced by this operation, in argument
    /// order, without allocating — the hot-path alternative to
    /// [`operands`](Self::operands) for per-candidate cost metrics.
    pub fn for_each_operand(&self, mut visit: impl FnMut(&Operand)) {
        match self {
            KernelOp::Gemm { a, b, .. }
            | KernelOp::Trmm { a, b, .. }
            | KernelOp::Symm { a, b, .. }
            | KernelOp::Trsm { a, b, .. }
            | KernelOp::Gesv { a, b, .. }
            | KernelOp::Posv { a, b, .. }
            | KernelOp::InvPair { a, b, .. } => {
                visit(a);
                visit(b);
            }
            KernelOp::Diag { d, b, .. } => {
                visit(d);
                visit(b);
            }
            KernelOp::Syrk { a, .. } => visit(a),
            KernelOp::Gemv { a, x, .. }
            | KernelOp::Trmv { a, x, .. }
            | KernelOp::Symv { a, x }
            | KernelOp::Trsv { a, x, .. } => {
                visit(a);
                visit(x);
            }
            KernelOp::Ger { x, y } | KernelOp::Dot { x, y } => {
                visit(x);
                visit(y);
            }
            KernelOp::Copy { b } => visit(b),
            KernelOp::Inv { a, .. } => visit(a),
        }
    }
}

fn apply_t(t: bool, s: Shape) -> Shape {
    if t {
        s.transposed()
    } else {
        s
    }
}

/// The free dimension of `B` (the one not shared with the square
/// structured operand `A`).
fn other_dim(a: &Operand, b: &Operand) -> usize {
    let m = a.shape().rows();
    let s = b.shape();
    if s.rows() == m {
        s.cols()
    } else {
        s.rows()
    }
}

impl fmt::Display for KernelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn t(flag: bool) -> &'static str {
            if flag {
                "T"
            } else {
                "N"
            }
        }
        fn side(s: Side) -> &'static str {
            match s {
                Side::Left => "L",
                Side::Right => "R",
            }
        }
        fn uplo(u: Uplo) -> &'static str {
            match u {
                Uplo::Lower => "L",
                Uplo::Upper => "U",
            }
        }
        match self {
            KernelOp::Gemm { ta, tb, a, b } => {
                write!(f, "gemm('{}', '{}', {}, {})", t(*ta), t(*tb), a, b)
            }
            KernelOp::Trmm {
                side: s,
                uplo: u,
                trans,
                a,
                b,
            } => write!(
                f,
                "trmm('{}', '{}', '{}', {}, {})",
                side(*s),
                uplo(*u),
                t(*trans),
                a,
                b
            ),
            KernelOp::Symm { side: s, a, b } => {
                write!(f, "symm('{}', {}, {})", side(*s), a, b)
            }
            KernelOp::Trsm {
                side: s,
                uplo: u,
                trans,
                tb,
                a,
                b,
            } => write!(
                f,
                "trsm('{}', '{}', '{}', {}, {}{})",
                side(*s),
                uplo(*u),
                t(*trans),
                a,
                b,
                if *tb { "'" } else { "" }
            ),
            KernelOp::Syrk { trans, a } => write!(f, "syrk('{}', {})", t(*trans), a),
            KernelOp::Gesv {
                side: s,
                trans,
                tb,
                a,
                b,
            } => write!(
                f,
                "gesv('{}', '{}', {}, {}{})",
                side(*s),
                t(*trans),
                a,
                b,
                if *tb { "'" } else { "" }
            ),
            KernelOp::Posv { side: s, tb, a, b } => write!(
                f,
                "posv('{}', {}, {}{})",
                side(*s),
                a,
                b,
                if *tb { "'" } else { "" }
            ),
            KernelOp::Diag {
                side: s,
                inv,
                tb,
                d,
                b,
            } => {
                let op = if *inv { "dgsv" } else { "dgmm" };
                write!(
                    f,
                    "{}('{}', {}, {}{})",
                    op,
                    side(*s),
                    d,
                    b,
                    if *tb { "'" } else { "" }
                )
            }
            KernelOp::Gemv { trans, a, x } => write!(f, "gemv('{}', {}, {})", t(*trans), a, x),
            KernelOp::Trmv {
                uplo: u,
                trans,
                a,
                x,
            } => {
                write!(f, "trmv('{}', '{}', {}, {})", uplo(*u), t(*trans), a, x)
            }
            KernelOp::Symv { a, x } => write!(f, "symv({a}, {x})"),
            KernelOp::Trsv {
                uplo: u,
                trans,
                a,
                x,
            } => {
                write!(f, "trsv('{}', '{}', {}, {})", uplo(*u), t(*trans), a, x)
            }
            KernelOp::Ger { x, y } => write!(f, "ger({x}, {y})"),
            KernelOp::Dot { x, y } => write!(f, "dot({x}, {y})"),
            KernelOp::Copy { b } => write!(f, "copy({b})"),
            KernelOp::Inv { kind, trans, a } => {
                let k = match kind {
                    InvKind::General => "ge",
                    InvKind::Spd => "po",
                    InvKind::Triangular(Uplo::Lower) => "trl",
                    InvKind::Triangular(Uplo::Upper) => "tru",
                    InvKind::Diagonal => "di",
                };
                write!(f, "inv_{}('{}', {})", k, t(*trans), a)
            }
            KernelOp::InvPair { ta, tb, a, b } => {
                write!(f, "invpair('{}', '{}', {}, {})", t(*ta), t(*tb), a, b)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(name: &str, r: usize, c: usize) -> Operand {
        Operand::matrix(name, r, c)
    }

    #[test]
    fn gemm_flops_paper_convention() {
        // A: n×k, B: k×m → 2mnk (Sec. 2 footnote).
        let k = KernelOp::Gemm {
            ta: false,
            tb: false,
            a: op("A", 20, 30),
            b: op("B", 30, 40),
        };
        assert_eq!(k.flops(), 2.0 * 20.0 * 40.0 * 30.0);
        assert_eq!(k.result_shape(), Shape::new(20, 40));
    }

    #[test]
    fn gemm_transposed_shapes() {
        let k = KernelOp::Gemm {
            ta: true,
            tb: false,
            a: op("A", 30, 20),
            b: op("B", 30, 40),
        };
        assert_eq!(k.result_shape(), Shape::new(20, 40));
        assert_eq!(k.flops(), 2.0 * 20.0 * 40.0 * 30.0);
    }

    #[test]
    fn trmm_half_of_gemm() {
        let tri = Operand::square("L", 20);
        let k = KernelOp::Trmm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: false,
            a: tri,
            b: op("B", 20, 40),
        };
        assert_eq!(k.flops(), 20.0 * 20.0 * 40.0);
    }

    #[test]
    fn trmm_right_side_dims() {
        let tri = Operand::square("L", 40);
        let k = KernelOp::Trmm {
            side: Side::Right,
            uplo: Uplo::Lower,
            trans: false,
            a: tri,
            b: op("B", 20, 40),
        };
        // m = 40 (triangular dim), n = 20.
        assert_eq!(k.flops(), 40.0 * 40.0 * 20.0);
        assert_eq!(k.result_shape(), Shape::new(20, 40));
    }

    #[test]
    fn syrk_paper_cost() {
        // SYRK on AᵀA with A k×m: m²k (Table 1).
        let a = op("A", 30, 20);
        let k = KernelOp::Syrk { trans: true, a };
        assert_eq!(k.flops(), 20.0 * 20.0 * 30.0);
        assert_eq!(k.result_shape(), Shape::square(20));
    }

    #[test]
    fn solver_costs() {
        let a = Operand::square("A", 10);
        let b = op("B", 10, 4);
        let gesv = KernelOp::Gesv {
            side: Side::Left,
            trans: false,
            tb: false,
            a: a.clone(),
            b: b.clone(),
        };
        let posv = KernelOp::Posv {
            side: Side::Left,
            tb: false,
            a: a.clone(),
            b: b.clone(),
        };
        assert!(gesv.flops() > posv.flops());
        assert_eq!(gesv.flops(), 2.0 / 3.0 * 1000.0 + 2.0 * 100.0 * 4.0);
        assert_eq!(posv.flops(), 1.0 / 3.0 * 1000.0 + 2.0 * 100.0 * 4.0);
    }

    #[test]
    fn vector_kernel_costs() {
        let a = op("A", 10, 20);
        let x = Operand::col_vector("x", 20);
        let gemv = KernelOp::Gemv {
            trans: false,
            a,
            x: x.clone(),
        };
        assert_eq!(gemv.flops(), 2.0 * 10.0 * 20.0);
        assert_eq!(gemv.result_shape(), Shape::col_vector(10));

        let y = Operand::col_vector("y", 10);
        let ger = KernelOp::Ger {
            x: Operand::col_vector("x", 20),
            y,
        };
        assert_eq!(ger.flops(), 2.0 * 20.0 * 10.0);
        assert_eq!(ger.result_shape(), Shape::new(20, 10));

        let dot = KernelOp::Dot {
            x: Operand::col_vector("x", 20),
            y: Operand::col_vector("y", 20),
        };
        assert_eq!(dot.flops(), 40.0);
        assert_eq!(dot.result_shape(), Shape::new(1, 1));
    }

    #[test]
    fn display_forms() {
        let k = KernelOp::Trsm {
            side: Side::Left,
            uplo: Uplo::Lower,
            trans: true,
            tb: false,
            a: Operand::square("L", 4),
            b: op("B", 4, 2),
        };
        assert_eq!(k.to_string(), "trsm('L', 'L', 'T', L, B)");
        let k = KernelOp::Dot {
            x: Operand::col_vector("x", 3),
            y: Operand::col_vector("y", 3),
        };
        assert_eq!(k.to_string(), "dot(x, y)");
    }

    #[test]
    fn operands_listed() {
        let k = KernelOp::Symm {
            side: Side::Left,
            a: Operand::square("S", 4),
            b: op("B", 4, 2),
        };
        let names: Vec<_> = k.operands().iter().map(|o| o.name()).collect();
        assert_eq!(names, vec!["S", "B"]);
    }
}
