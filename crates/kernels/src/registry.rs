//! The kernel registry `K`: the set of available kernels, compiled into
//! a discrimination net for many-to-one matching.

use crate::kernel::{Constraint, Kernel, KernelMatch, ProductMatch};
use crate::op::{KernelFamily, KernelOp, Side, Uplo};
use gmc_expr::{Expr, Operand, Property, UnaryOp};
use gmc_pattern::{Bindings, DiscriminationNet, FlatTermScratch, Pattern, Var};
use std::collections::BTreeSet;

/// The first (usually structured) pattern variable.
const X: Var = Var::new(0);
/// The second pattern variable.
const Y: Var = Var::new(1);

/// The set of available kernels, with a discrimination net for matching
/// expressions against all of them at once.
///
/// # Example
///
/// ```
/// use gmc_expr::{Operand, Property};
/// use gmc_kernels::KernelRegistry;
///
/// let registry = KernelRegistry::blas_lapack();
/// let l = Operand::square("L", 10).with_property(Property::LowerTriangular);
/// let b = Operand::matrix("B", 10, 4);
/// let matches = registry.match_expr(&(l.inverse() * b.expr()));
/// // TRSM (m²n) and GESV (2/3·m³ + 2m²n) both apply; TRSM is cheaper.
/// let best = matches
///     .iter()
///     .min_by(|p, q| p.flops().total_cmp(&q.flops()))
///     .unwrap();
/// assert_eq!(best.kernel.name(), "TRSM_LLN");
/// ```
#[derive(Debug)]
pub struct KernelRegistry {
    kernels: Vec<Kernel>,
    net: DiscriminationNet<usize>,
}

impl KernelRegistry {
    /// The full BLAS/LAPACK-style registry used by the paper's
    /// evaluation: GEMM, TRMM, SYMM, TRSM, SYRK, solvers (GESV/POSV),
    /// diagonal kernels, the BLAS-2 vector kernels, identity elimination
    /// and the composite inverse-pair kernel (paper Sec. 5 assumes one
    /// exists).
    pub fn blas_lapack() -> Self {
        RegistryBuilder::default().build()
    }

    /// A registry containing only the plain `GEMM_NN` kernel — the
    /// classic matrix chain problem setting (paper Sec. 2).
    pub fn mcp_only() -> Self {
        RegistryBuilder::default()
            .only_families([KernelFamily::Gemm])
            .without_transposed_gemm()
            .build()
    }

    /// Starts building a customized registry.
    pub fn builder() -> RegistryBuilder {
        RegistryBuilder::default()
    }

    /// All kernels, in registration order.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Number of kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Matches `expr` against every kernel; returns all matches whose
    /// constraints are satisfied, with instantiated operations.
    pub fn match_expr(&self, expr: &Expr) -> Vec<KernelMatch<'_>> {
        self.net
            .matches(expr)
            .into_iter()
            .filter_map(|m| {
                let kernel = &self.kernels[*m.payload];
                if kernel.constraints().iter().all(|c| c.check(&m.bindings)) {
                    Some(KernelMatch {
                        op: kernel.instantiate(&m.bindings),
                        kernel,
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    /// Renders the full registry as a Markdown table (name, pattern,
    /// constraints) — the generalized version of the paper's Table 1,
    /// in registration order.
    pub fn describe(&self) -> String {
        let mut out = String::from("| kernel | pattern | constraints |\n|---|---|---|\n");
        for k in &self.kernels {
            let constraints = if k.constraints().is_empty() {
                "—".to_owned()
            } else {
                k.constraints()
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!(
                "| {} | `{}` | {} |\n",
                k.name(),
                k.pattern(),
                constraints
            ));
        }
        out
    }

    /// The match minimizing FLOPs, breaking ties in favor of higher
    /// kernel specificity (so `GEMV` beats `GEMM` on matrix-vector
    /// products of equal cost).
    ///
    /// Each candidate's FLOP count is computed once up front rather
    /// than re-derived inside every `min_by` comparison.
    pub fn best_by_flops(&self, expr: &Expr) -> Option<KernelMatch<'_>> {
        self.match_expr(expr)
            .into_iter()
            .map(|m| {
                let flops = m.flops();
                (m, flops)
            })
            .min_by(|(p, fp), (q, fq)| {
                fp.total_cmp(fq)
                    .then_with(|| q.kernel.specificity().cmp(&p.kernel.specificity()))
            })
            .map(|(m, _)| m)
    }

    /// The cheapest kernel for the binary product `left · right` under
    /// `metric` — the allocation-free GMC hot path.
    ///
    /// Streams candidates straight off the discrimination net via
    /// [`DiscriminationNet::match_product_with`]: no owned
    /// `Expr::Times` is built, no `Vec` of matches is collected, and
    /// constraint checks are folded into the walk. Each surviving
    /// candidate's cost is computed exactly once and the winner's is
    /// returned in the [`ProductMatch`].
    ///
    /// Selection is equivalent to running [`match_expr`](Self::match_expr)
    /// and taking the `min_by` over `metric` with ties broken by
    /// descending specificity and then earliest registration — the
    /// exact kernel the collecting implementation chooses.
    pub fn best_product_match<C, F>(
        &self,
        left: &Expr,
        right: &Expr,
        scratch: &mut FlatTermScratch,
        mut metric: F,
    ) -> Option<ProductMatch<'_, C>>
    where
        C: PartialOrd,
        F: FnMut(&KernelOp) -> C,
    {
        use std::cmp::Ordering;
        let mut best: Option<(ProductMatch<'_, C>, usize)> = None;
        self.net
            .match_product_with(left, right, scratch, |&id, bindings| {
                let kernel = &self.kernels[id];
                if !kernel.constraints().iter().all(|c| c.check(bindings)) {
                    return;
                }
                let op = kernel.instantiate(bindings);
                let cost = metric(&op);
                // Matches stream in trie order, so replicate a min_by
                // scan over ascending registration ids: replace on a
                // strictly better candidate, and on full ties keep the
                // lowest id.
                let replace = match &best {
                    None => true,
                    Some((incumbent, incumbent_id)) => {
                        let ord = incumbent
                            .cost
                            .partial_cmp(&cost)
                            .unwrap_or(Ordering::Equal)
                            .then_with(|| {
                                kernel.specificity().cmp(&incumbent.kernel.specificity())
                            });
                        ord == Ordering::Greater || (ord == Ordering::Equal && id < *incumbent_id)
                    }
                };
                if replace {
                    best = Some((ProductMatch { kernel, op, cost }, id));
                }
            });
        best.map(|(m, _)| m)
    }

    /// Streams *every* constraint-satisfying kernel match for the
    /// binary product `left · right`, in discrimination-net order,
    /// without instantiating operations or computing costs.
    ///
    /// `visit` receives the kernel's registration index (its position
    /// in [`kernels`](Self::kernels)), the kernel, and the variable
    /// bindings of the match. This is the enumeration underlying
    /// [`best_product_match`](Self::best_product_match); the symbolic
    /// plan recorder of `gmc-plan` uses it to capture the full
    /// candidate set of a DP cell once, so later instantiations can
    /// re-rank candidates by evaluated cost without re-matching.
    pub fn for_each_product_match<F>(
        &self,
        left: &Expr,
        right: &Expr,
        scratch: &mut FlatTermScratch,
        mut visit: F,
    ) where
        F: FnMut(usize, &Kernel, &Bindings),
    {
        self.net
            .match_product_with(left, right, scratch, |&id, bindings| {
                let kernel = &self.kernels[id];
                if kernel.constraints().iter().all(|c| c.check(bindings)) {
                    visit(id, kernel, bindings);
                }
            });
    }
}

/// Configures which kernels go into a [`KernelRegistry`].
///
/// Used for ablations (e.g. reproducing the paper's Sec. 3.2 example,
/// which prices `AᵀA` as a general product, requires excluding `SYRK`)
/// and for the completeness experiment of Sec. 3.4 (no composite
/// inverse-pair kernel).
#[derive(Debug, Clone, Default)]
pub struct RegistryBuilder {
    excluded: BTreeSet<KernelFamily>,
    only: Option<BTreeSet<KernelFamily>>,
    no_composite_inverse: bool,
    no_transposed_gemm: bool,
}

impl RegistryBuilder {
    /// Excludes a kernel family.
    #[must_use]
    pub fn without_family(mut self, family: KernelFamily) -> Self {
        self.excluded.insert(family);
        self
    }

    /// Keeps only the given families.
    #[must_use]
    pub fn only_families(mut self, families: impl IntoIterator<Item = KernelFamily>) -> Self {
        self.only = Some(families.into_iter().collect());
        self
    }

    /// Excludes the composite `op(A)⁻¹·op(B)⁻¹` kernel, reproducing the
    /// completeness scenario of paper Sec. 3.4.
    #[must_use]
    pub fn without_composite_inverse(mut self) -> Self {
        self.no_composite_inverse = true;
        self
    }

    /// Excludes the transposed GEMM variants, leaving only `GEMM_NN`
    /// (classic MCP setting).
    #[must_use]
    pub fn without_transposed_gemm(mut self) -> Self {
        self.no_transposed_gemm = true;
        self
    }

    fn wants(&self, family: KernelFamily) -> bool {
        if let Some(only) = &self.only {
            if !only.contains(&family) {
                return false;
            }
        }
        if self.excluded.contains(&family) {
            return false;
        }
        if family == KernelFamily::InvPair && self.no_composite_inverse {
            return false;
        }
        true
    }

    /// Builds the registry.
    pub fn build(self) -> KernelRegistry {
        let mut kernels: Vec<Kernel> = Vec::new();

        // Factor pattern with a unary operator applied to a variable.
        fn fp(v: Var, op: UnaryOp) -> Pattern {
            match op {
                UnaryOp::None => Pattern::var(v),
                UnaryOp::Transpose => Pattern::transpose(Pattern::var(v)),
                UnaryOp::Inverse => Pattern::inverse(Pattern::var(v)),
                UnaryOp::InverseTranspose => Pattern::inverse_transpose(Pattern::var(v)),
            }
        }
        fn bound(b: &Bindings, v: Var) -> Operand {
            b.get(v).expect("pattern binds its variables").clone()
        }
        fn tname(t: bool) -> &'static str {
            if t {
                "T"
            } else {
                "N"
            }
        }

        // ---- GEMM: the four transpose variants. -----------------------
        if self.wants(KernelFamily::Gemm) {
            let variants: &[(bool, bool)] = if self.no_transposed_gemm {
                &[(false, false)]
            } else {
                &[(false, false), (true, false), (false, true), (true, true)]
            };
            for &(ta, tb) in variants {
                let lp = fp(
                    X,
                    if ta {
                        UnaryOp::Transpose
                    } else {
                        UnaryOp::None
                    },
                );
                let rp = fp(
                    Y,
                    if tb {
                        UnaryOp::Transpose
                    } else {
                        UnaryOp::None
                    },
                );
                kernels.push(Kernel::new(
                    format!("GEMM_{}{}", tname(ta), tname(tb)),
                    KernelFamily::Gemm,
                    Pattern::times2(lp, rp),
                    vec![],
                    0,
                    Box::new(move |b| KernelOp::Gemm {
                        ta,
                        tb,
                        a: bound(b, X),
                        b: bound(b, Y),
                    }),
                ));
            }
        }

        // ---- TRMM: side × uplo × trans. --------------------------------
        if self.wants(KernelFamily::Trmm) {
            for side in [Side::Left, Side::Right] {
                for (uplo, prop) in [
                    (Uplo::Lower, Property::LowerTriangular),
                    (Uplo::Upper, Property::UpperTriangular),
                ] {
                    for trans in [false, true] {
                        let xop = if trans {
                            UnaryOp::Transpose
                        } else {
                            UnaryOp::None
                        };
                        let pattern = match side {
                            Side::Left => Pattern::times2(fp(X, xop), fp(Y, UnaryOp::None)),
                            Side::Right => Pattern::times2(fp(Y, UnaryOp::None), fp(X, xop)),
                        };
                        let s = if side == Side::Left { "L" } else { "R" };
                        let u = if uplo == Uplo::Lower { "L" } else { "U" };
                        kernels.push(Kernel::new(
                            format!("TRMM_{}{}{}", s, u, tname(trans)),
                            KernelFamily::Trmm,
                            pattern,
                            vec![Constraint::Has(X, prop)],
                            2,
                            Box::new(move |b| KernelOp::Trmm {
                                side,
                                uplo,
                                trans,
                                a: bound(b, X),
                                b: bound(b, Y),
                            }),
                        ));
                    }
                }
            }
        }

        // ---- SYMM: side × (plain or transposed symmetric operand). ----
        if self.wants(KernelFamily::Symm) {
            for side in [Side::Left, Side::Right] {
                for trans in [false, true] {
                    let xop = if trans {
                        UnaryOp::Transpose
                    } else {
                        UnaryOp::None
                    };
                    let pattern = match side {
                        Side::Left => Pattern::times2(fp(X, xop), fp(Y, UnaryOp::None)),
                        Side::Right => Pattern::times2(fp(Y, UnaryOp::None), fp(X, xop)),
                    };
                    let s = if side == Side::Left { "L" } else { "R" };
                    kernels.push(Kernel::new(
                        format!("SYMM_{}{}", s, tname(trans)),
                        KernelFamily::Symm,
                        pattern,
                        vec![Constraint::Has(X, Property::Symmetric)],
                        2,
                        Box::new(move |b| KernelOp::Symm {
                            side,
                            a: bound(b, X),
                            b: bound(b, Y),
                        }),
                    ));
                }
            }
        }

        // ---- TRSM: side × uplo × trans (inverted triangular operand). -
        if self.wants(KernelFamily::Trsm) {
            for side in [Side::Left, Side::Right] {
                for (uplo, prop) in [
                    (Uplo::Lower, Property::LowerTriangular),
                    (Uplo::Upper, Property::UpperTriangular),
                ] {
                    for trans in [false, true] {
                        for tb in [false, true] {
                            let xop = if trans {
                                UnaryOp::InverseTranspose
                            } else {
                                UnaryOp::Inverse
                            };
                            let yop = if tb {
                                UnaryOp::Transpose
                            } else {
                                UnaryOp::None
                            };
                            let pattern = match side {
                                Side::Left => Pattern::times2(fp(X, xop), fp(Y, yop)),
                                Side::Right => Pattern::times2(fp(Y, yop), fp(X, xop)),
                            };
                            let s = if side == Side::Left { "L" } else { "R" };
                            let u = if uplo == Uplo::Lower { "L" } else { "U" };
                            let suffix = if tb { "_TB" } else { "" };
                            kernels.push(Kernel::new(
                                format!("TRSM_{}{}{}{}", s, u, tname(trans), suffix),
                                KernelFamily::Trsm,
                                pattern,
                                vec![Constraint::Has(X, prop)],
                                2,
                                Box::new(move |b| KernelOp::Trsm {
                                    side,
                                    uplo,
                                    trans,
                                    tb,
                                    a: bound(b, X),
                                    b: bound(b, Y),
                                }),
                            ));
                        }
                    }
                }
            }
        }

        // ---- SYRK: XᵀX and XXᵀ (non-linear patterns). ------------------
        if self.wants(KernelFamily::Syrk) {
            kernels.push(Kernel::new(
                "SYRK_T",
                KernelFamily::Syrk,
                Pattern::times2(fp(X, UnaryOp::Transpose), fp(X, UnaryOp::None)),
                vec![],
                3,
                Box::new(move |b| KernelOp::Syrk {
                    trans: true,
                    a: bound(b, X),
                }),
            ));
            kernels.push(Kernel::new(
                "SYRK_N",
                KernelFamily::Syrk,
                Pattern::times2(fp(X, UnaryOp::None), fp(X, UnaryOp::Transpose)),
                vec![],
                3,
                Box::new(move |b| KernelOp::Syrk {
                    trans: false,
                    a: bound(b, X),
                }),
            ));
        }

        // ---- GESV: general solves, both sides, optional transpose. ----
        if self.wants(KernelFamily::Gesv) {
            for side in [Side::Left, Side::Right] {
                for trans in [false, true] {
                    for tb in [false, true] {
                        let xop = if trans {
                            UnaryOp::InverseTranspose
                        } else {
                            UnaryOp::Inverse
                        };
                        let yop = if tb {
                            UnaryOp::Transpose
                        } else {
                            UnaryOp::None
                        };
                        let pattern = match side {
                            Side::Left => Pattern::times2(fp(X, xop), fp(Y, yop)),
                            Side::Right => Pattern::times2(fp(Y, yop), fp(X, xop)),
                        };
                        let s = if side == Side::Left { "L" } else { "R" };
                        let suffix = if tb { "_TB" } else { "" };
                        kernels.push(Kernel::new(
                            format!("GESV_{}{}{}", s, tname(trans), suffix),
                            KernelFamily::Gesv,
                            pattern,
                            vec![],
                            1,
                            Box::new(move |b| KernelOp::Gesv {
                                side,
                                trans,
                                tb,
                                a: bound(b, X),
                                b: bound(b, Y),
                            }),
                        ));
                    }
                }
            }
        }

        // ---- POSV: SPD solves (transpose of SPD is itself). ------------
        if self.wants(KernelFamily::Posv) {
            for side in [Side::Left, Side::Right] {
                for trans in [false, true] {
                    for tb in [false, true] {
                        let xop = if trans {
                            UnaryOp::InverseTranspose
                        } else {
                            UnaryOp::Inverse
                        };
                        let yop = if tb {
                            UnaryOp::Transpose
                        } else {
                            UnaryOp::None
                        };
                        let pattern = match side {
                            Side::Left => Pattern::times2(fp(X, xop), fp(Y, yop)),
                            Side::Right => Pattern::times2(fp(Y, yop), fp(X, xop)),
                        };
                        let s = if side == Side::Left { "L" } else { "R" };
                        let suffix = if tb { "_TB" } else { "" };
                        kernels.push(Kernel::new(
                            format!("POSV_{}{}{}", s, tname(trans), suffix),
                            KernelFamily::Posv,
                            pattern,
                            vec![Constraint::Has(X, Property::SymmetricPositiveDefinite)],
                            2,
                            Box::new(move |b| KernelOp::Posv {
                                side,
                                tb,
                                a: bound(b, X),
                                b: bound(b, Y),
                            }),
                        ));
                    }
                }
            }
        }

        // ---- Diagonal multiplies and solves. ---------------------------
        if self.wants(KernelFamily::Diag) {
            for side in [Side::Left, Side::Right] {
                for (inv, ops) in [
                    (false, [UnaryOp::None, UnaryOp::Transpose]),
                    (true, [UnaryOp::Inverse, UnaryOp::InverseTranspose]),
                ] {
                    for xop in ops {
                        for tb in [false, true] {
                            let yop = if tb {
                                UnaryOp::Transpose
                            } else {
                                UnaryOp::None
                            };
                            let pattern = match side {
                                Side::Left => Pattern::times2(fp(X, xop), fp(Y, yop)),
                                Side::Right => Pattern::times2(fp(Y, yop), fp(X, xop)),
                            };
                            let s = if side == Side::Left { "L" } else { "R" };
                            let name = if inv { "DGSV" } else { "DGMM" };
                            let suffix = if tb { "_TB" } else { "" };
                            kernels.push(Kernel::new(
                                format!("{}_{}{}{}", name, s, tname(xop.is_transposed()), suffix),
                                KernelFamily::Diag,
                                pattern,
                                vec![Constraint::Has(X, Property::Diagonal)],
                                4,
                                Box::new(move |b| KernelOp::Diag {
                                    side,
                                    inv,
                                    tb,
                                    d: bound(b, X),
                                    b: bound(b, Y),
                                }),
                            ));
                        }
                    }
                }
            }
        }

        // ---- BLAS 2: matrix-vector kernels. ----------------------------
        if self.wants(KernelFamily::Gemv) {
            for trans in [false, true] {
                let xop = if trans {
                    UnaryOp::Transpose
                } else {
                    UnaryOp::None
                };
                kernels.push(Kernel::new(
                    format!("GEMV_{}", tname(trans)),
                    KernelFamily::Gemv,
                    Pattern::times2(fp(X, xop), fp(Y, UnaryOp::None)),
                    vec![Constraint::IsNotVector(X), Constraint::IsColVector(Y)],
                    5,
                    Box::new(move |b| KernelOp::Gemv {
                        trans,
                        a: bound(b, X),
                        x: bound(b, Y),
                    }),
                ));
            }
        }
        if self.wants(KernelFamily::Trmv) {
            for (uplo, prop) in [
                (Uplo::Lower, Property::LowerTriangular),
                (Uplo::Upper, Property::UpperTriangular),
            ] {
                for trans in [false, true] {
                    let xop = if trans {
                        UnaryOp::Transpose
                    } else {
                        UnaryOp::None
                    };
                    let u = if uplo == Uplo::Lower { "L" } else { "U" };
                    kernels.push(Kernel::new(
                        format!("TRMV_{}{}", u, tname(trans)),
                        KernelFamily::Trmv,
                        Pattern::times2(fp(X, xop), fp(Y, UnaryOp::None)),
                        vec![Constraint::Has(X, prop), Constraint::IsColVector(Y)],
                        6,
                        Box::new(move |b| KernelOp::Trmv {
                            uplo,
                            trans,
                            a: bound(b, X),
                            x: bound(b, Y),
                        }),
                    ));
                }
            }
        }
        if self.wants(KernelFamily::Symv) {
            for trans in [false, true] {
                let xop = if trans {
                    UnaryOp::Transpose
                } else {
                    UnaryOp::None
                };
                kernels.push(Kernel::new(
                    format!("SYMV_{}", tname(trans)),
                    KernelFamily::Symv,
                    Pattern::times2(fp(X, xop), fp(Y, UnaryOp::None)),
                    vec![
                        Constraint::Has(X, Property::Symmetric),
                        Constraint::IsColVector(Y),
                    ],
                    6,
                    Box::new(move |b| KernelOp::Symv {
                        a: bound(b, X),
                        x: bound(b, Y),
                    }),
                ));
            }
        }
        if self.wants(KernelFamily::Trsv) {
            for (uplo, prop) in [
                (Uplo::Lower, Property::LowerTriangular),
                (Uplo::Upper, Property::UpperTriangular),
            ] {
                for trans in [false, true] {
                    let xop = if trans {
                        UnaryOp::InverseTranspose
                    } else {
                        UnaryOp::Inverse
                    };
                    let u = if uplo == Uplo::Lower { "L" } else { "U" };
                    kernels.push(Kernel::new(
                        format!("TRSV_{}{}", u, tname(trans)),
                        KernelFamily::Trsv,
                        Pattern::times2(fp(X, xop), fp(Y, UnaryOp::None)),
                        vec![Constraint::Has(X, prop), Constraint::IsColVector(Y)],
                        6,
                        Box::new(move |b| KernelOp::Trsv {
                            uplo,
                            trans,
                            a: bound(b, X),
                            x: bound(b, Y),
                        }),
                    ));
                }
            }
        }

        // ---- GER (outer product) and DOT (inner product). --------------
        if self.wants(KernelFamily::Ger) {
            kernels.push(Kernel::new(
                "GER",
                KernelFamily::Ger,
                Pattern::times2(fp(X, UnaryOp::None), fp(Y, UnaryOp::Transpose)),
                vec![Constraint::IsColVector(X), Constraint::IsColVector(Y)],
                6,
                Box::new(move |b| KernelOp::Ger {
                    x: bound(b, X),
                    y: bound(b, Y),
                }),
            ));
        }
        if self.wants(KernelFamily::Dot) {
            kernels.push(Kernel::new(
                "DOT",
                KernelFamily::Dot,
                Pattern::times2(fp(X, UnaryOp::Transpose), fp(Y, UnaryOp::None)),
                vec![Constraint::IsColVector(X), Constraint::IsColVector(Y)],
                6,
                Box::new(move |b| KernelOp::Dot {
                    x: bound(b, X),
                    y: bound(b, Y),
                }),
            ));
        }

        // ---- Identity elimination (extension). -------------------------
        if self.wants(KernelFamily::Copy) {
            for side in [Side::Left, Side::Right] {
                for xop in [
                    UnaryOp::None,
                    UnaryOp::Transpose,
                    UnaryOp::Inverse,
                    UnaryOp::InverseTranspose,
                ] {
                    let pattern = match side {
                        Side::Left => Pattern::times2(fp(X, xop), fp(Y, UnaryOp::None)),
                        Side::Right => Pattern::times2(fp(Y, UnaryOp::None), fp(X, xop)),
                    };
                    let s = if side == Side::Left { "L" } else { "R" };
                    kernels.push(Kernel::new(
                        format!("COPY_{}{}", s, xop.suffix().trim_start_matches('^')),
                        KernelFamily::Copy,
                        pattern,
                        vec![Constraint::Has(X, Property::Identity)],
                        7,
                        Box::new(move |b| KernelOp::Copy { b: bound(b, Y) }),
                    ));
                }
            }
        }

        // ---- Composite inverse-pair kernel (paper Sec. 5). --------------
        if self.wants(KernelFamily::InvPair) {
            for ta in [false, true] {
                for tb in [false, true] {
                    let lop = if ta {
                        UnaryOp::InverseTranspose
                    } else {
                        UnaryOp::Inverse
                    };
                    let rop = if tb {
                        UnaryOp::InverseTranspose
                    } else {
                        UnaryOp::Inverse
                    };
                    kernels.push(Kernel::new(
                        format!("INVPAIR_{}{}", tname(ta), tname(tb)),
                        KernelFamily::InvPair,
                        Pattern::times2(fp(X, lop), fp(Y, rop)),
                        vec![],
                        0,
                        Box::new(move |b| KernelOp::InvPair {
                            ta,
                            tb,
                            a: bound(b, X),
                            b: bound(b, Y),
                        }),
                    ));
                }
            }
        }

        let mut net = DiscriminationNet::new();
        for (i, k) in kernels.iter().enumerate() {
            net.insert(k.pattern().clone(), i);
        }
        KernelRegistry { kernels, net }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> KernelRegistry {
        KernelRegistry::blas_lapack()
    }

    #[test]
    fn registry_is_substantial() {
        let r = registry();
        assert!(r.len() >= 60, "expected a full registry, got {}", r.len());
    }

    #[test]
    fn plain_product_matches_only_gemm_for_general_operands() {
        let r = registry();
        let a = Operand::matrix("A", 4, 5);
        let b = Operand::matrix("B", 5, 6);
        let ms = r.match_expr(&(a.expr() * b.expr()));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].kernel.name(), "GEMM_NN");
    }

    #[test]
    fn triangular_product_prefers_trmm() {
        let r = registry();
        let l = Operand::square("L", 10).with_property(Property::LowerTriangular);
        let b = Operand::matrix("B", 10, 4);
        let best = r.best_by_flops(&(l.expr() * b.expr())).unwrap();
        assert_eq!(best.kernel.name(), "TRMM_LLN");
        // GEMM also matches, with double the cost.
        let ms = r.match_expr(&(l.expr() * b.expr()));
        assert!(ms.iter().any(|m| m.kernel.name() == "GEMM_NN"));
    }

    #[test]
    fn transposed_triangular_flips_nothing_but_trans_flag() {
        let r = registry();
        let u = Operand::square("U", 10).with_property(Property::UpperTriangular);
        let b = Operand::matrix("B", 10, 4);
        let best = r.best_by_flops(&(u.transpose() * b.expr())).unwrap();
        assert_eq!(best.kernel.name(), "TRMM_LUT");
    }

    #[test]
    fn spd_solve_prefers_posv_over_gesv() {
        let r = registry();
        let a = Operand::square("A", 10).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 10, 4);
        let best = r.best_by_flops(&(a.inverse() * b.expr())).unwrap();
        assert_eq!(best.kernel.name(), "POSV_LN");
    }

    #[test]
    fn general_solve_falls_back_to_gesv() {
        let r = registry();
        let a = Operand::square("A", 10);
        let b = Operand::matrix("B", 10, 4);
        let best = r.best_by_flops(&(a.inverse() * b.expr())).unwrap();
        assert_eq!(best.kernel.name(), "GESV_LN");
        // A transposed right-hand side selects the _TB variant.
        let best = r
            .best_by_flops(&(b.transpose() * a.inverse_transpose()))
            .unwrap();
        assert_eq!(best.kernel.name(), "GESV_RT_TB");
    }

    #[test]
    fn diagonal_wins_over_everything() {
        let r = registry();
        let d = Operand::square("D", 10).with_property(Property::Diagonal);
        let b = Operand::matrix("B", 10, 4);
        let best = r.best_by_flops(&(d.expr() * b.expr())).unwrap();
        assert_eq!(best.kernel.family(), KernelFamily::Diag);
        let best = r.best_by_flops(&(d.inverse() * b.expr())).unwrap();
        assert_eq!(best.kernel.name(), "DGSV_LN");
    }

    #[test]
    fn syrk_beats_gemm_on_gram_products() {
        let r = registry();
        let a = Operand::matrix("A", 20, 15);
        let best = r.best_by_flops(&(a.transpose() * a.expr())).unwrap();
        assert_eq!(best.kernel.name(), "SYRK_T");
        let best = r.best_by_flops(&(a.expr() * a.transpose())).unwrap();
        assert_eq!(best.kernel.name(), "SYRK_N");
        // Different operands: no SYRK.
        let b = Operand::matrix("B", 20, 15);
        let ms = r.match_expr(&(a.transpose() * b.expr()));
        assert!(ms.iter().all(|m| m.kernel.family() != KernelFamily::Syrk));
    }

    #[test]
    fn matrix_vector_prefers_gemv_on_tie() {
        let r = registry();
        let a = Operand::matrix("A", 10, 20);
        let x = Operand::col_vector("x", 20);
        let best = r.best_by_flops(&(a.expr() * x.expr())).unwrap();
        assert_eq!(best.kernel.name(), "GEMV_N");
    }

    #[test]
    fn triangular_vector_uses_trmv() {
        let r = registry();
        let l = Operand::square("L", 10).with_property(Property::LowerTriangular);
        let x = Operand::col_vector("x", 10);
        let best = r.best_by_flops(&(l.expr() * x.expr())).unwrap();
        assert_eq!(best.kernel.name(), "TRMV_LN");
        let best = r.best_by_flops(&(l.inverse() * x.expr())).unwrap();
        assert_eq!(best.kernel.name(), "TRSV_LN");
    }

    #[test]
    fn outer_and_inner_products() {
        let r = registry();
        let x = Operand::col_vector("x", 10);
        let y = Operand::col_vector("y", 20);
        let best = r.best_by_flops(&(x.expr() * y.transpose())).unwrap();
        assert_eq!(best.kernel.name(), "GER");
        let z = Operand::col_vector("z", 10);
        let best = r.best_by_flops(&(x.transpose() * z.expr())).unwrap();
        assert_eq!(best.kernel.name(), "DOT");
    }

    #[test]
    fn identity_elimination() {
        let r = registry();
        let i = Operand::square("I", 10).with_property(Property::Identity);
        let b = Operand::matrix("B", 10, 4);
        let best = r.best_by_flops(&(i.expr() * b.expr())).unwrap();
        assert_eq!(best.kernel.family(), KernelFamily::Copy);
        assert_eq!(best.flops(), 0.0);
    }

    #[test]
    fn inverse_pair_requires_composite_kernel() {
        let full = registry();
        let a = Operand::square("A", 10);
        let b = Operand::square("B", 10);
        let e = a.inverse() * b.inverse();
        assert!(!full.match_expr(&e).is_empty());

        let strict = KernelRegistry::builder()
            .without_composite_inverse()
            .build();
        assert!(strict.match_expr(&e).is_empty());
    }

    #[test]
    fn mcp_only_registry() {
        let r = KernelRegistry::mcp_only();
        let a = Operand::matrix("A", 4, 5);
        let b = Operand::matrix("B", 5, 6);
        assert_eq!(r.match_expr(&(a.expr() * b.expr())).len(), 1);
        assert!(r.match_expr(&(a.transpose() * b.expr())).is_empty());
    }

    #[test]
    fn without_family_ablation() {
        let r = KernelRegistry::builder()
            .without_family(KernelFamily::Syrk)
            .build();
        let a = Operand::matrix("A", 20, 15);
        let ms = r.match_expr(&(a.transpose() * a.expr()));
        assert!(ms.iter().all(|m| m.kernel.family() != KernelFamily::Syrk));
        assert!(ms.iter().any(|m| m.kernel.name() == "GEMM_TN"));
    }

    #[test]
    fn symm_matches_transposed_symmetric() {
        let r = registry();
        let s = Operand::square("S", 10).with_property(Property::Symmetric);
        let b = Operand::matrix("B", 10, 4);
        let best = r.best_by_flops(&(s.transpose() * b.expr())).unwrap();
        assert_eq!(best.kernel.name(), "SYMM_LT");
        let b2 = Operand::matrix("B", 4, 10);
        let best = r.best_by_flops(&(b2.expr() * s.expr())).unwrap();
        assert_eq!(best.kernel.name(), "SYMM_RN");
    }

    #[test]
    fn describe_covers_every_kernel() {
        let r = registry();
        let text = r.describe();
        assert_eq!(text.lines().count(), r.len() + 2); // header + separator
        assert!(text.contains("TRSM_LLN"));
        assert!(text.contains("is LowerTriangular(?0)"));
    }

    #[test]
    fn best_product_match_agrees_with_collecting_selection() {
        let r = registry();
        let l = Operand::square("L", 10).with_property(Property::LowerTriangular);
        let d = Operand::square("D", 10).with_property(Property::Diagonal);
        let s = Operand::square("S", 10).with_property(Property::SymmetricPositiveDefinite);
        let a = Operand::matrix("A", 10, 6);
        let b = Operand::matrix("B", 10, 4);
        let x = Operand::col_vector("x", 10);
        let y = Operand::col_vector("y", 4);
        let cases: Vec<(Expr, Expr)> = vec![
            (l.expr(), b.expr()),
            (l.inverse(), b.expr()),
            (s.inverse(), b.expr()),
            (d.expr(), b.expr()),
            (a.transpose(), a.expr()),
            (a.transpose(), b.expr()),
            (a.expr(), y.transpose()),
            (x.expr(), y.transpose()),
            (x.transpose(), x.expr()),
            (l.expr(), x.expr()),
            (b.transpose(), s.inverse_transpose()),
        ];
        let mut scratch = FlatTermScratch::new();
        for (le, re) in cases {
            let product = Expr::times([le.clone(), re.clone()]);
            let collected = r
                .match_expr(&product)
                .into_iter()
                .min_by(|p, q| {
                    p.flops()
                        .partial_cmp(&q.flops())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| q.kernel.specificity().cmp(&p.kernel.specificity()))
                })
                .expect("all cases are computable");
            let streamed = r
                .best_product_match(&le, &re, &mut scratch, KernelOp::flops)
                .expect("all cases are computable");
            assert_eq!(
                streamed.kernel.name(),
                collected.kernel.name(),
                "selection diverged on {product}"
            );
            assert_eq!(streamed.op, collected.op, "op diverged on {product}");
            assert_eq!(streamed.cost, collected.op.flops());
        }
    }

    #[test]
    fn best_product_match_returns_none_without_candidates() {
        let r = KernelRegistry::builder()
            .only_families([KernelFamily::Gemm])
            .build();
        let a = Operand::square("A", 10);
        let b = Operand::matrix("B", 10, 4);
        let mut scratch = FlatTermScratch::new();
        assert!(r
            .best_product_match(&a.inverse(), &b.expr(), &mut scratch, KernelOp::flops)
            .is_none());
    }

    #[test]
    fn no_match_for_unary_only_expression() {
        let r = registry();
        let a = Operand::square("A", 4);
        assert!(r.match_expr(&a.inverse()).is_empty());
    }
}
