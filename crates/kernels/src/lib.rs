//! The kernel set `K` of the GMC algorithm: BLAS/LAPACK-style kernels
//! described by patterns, constraints and cost functions (paper Table 1).
//!
//! A [`Kernel`] couples a structural [`gmc_pattern::Pattern`] with
//! property [`Constraint`]s (e.g. *is lower triangular(X)*) and an
//! instantiation function producing a concrete [`KernelOp`] — the
//! operation that code generation emits and the runtime executes. The
//! [`KernelRegistry`] compiles all kernels into a discrimination net so
//! that the GMC algorithm's `match` step (paper Fig. 4 line 6) finds
//! every applicable kernel in one traversal.
//!
//! FLOP costs follow the paper's conventions: `GEMM` costs `2mnk`;
//! the structured kernels `TRMM`/`SYMM`/`TRSM` cost `m²n`; `SYRK` costs
//! `m²k`; solvers add the factorization cost (LU: `2/3·m³`, Cholesky:
//! `1/3·m³`); diagonal kernels cost `mn`.
//!
//! # Example
//!
//! ```
//! use gmc_expr::{Operand, Property};
//! use gmc_kernels::KernelRegistry;
//!
//! let registry = KernelRegistry::blas_lapack();
//! let a = Operand::square("A", 100).with_property(Property::SymmetricPositiveDefinite);
//! let b = Operand::matrix("B", 100, 10);
//! // A⁻¹·B: POSV (Cholesky solve) beats GESV (LU solve) and both beat
//! // explicit inversion, which is not even in the registry as a
//! // standalone kernel.
//! let best = registry.best_by_flops(&(a.inverse() * b.expr())).unwrap();
//! assert_eq!(best.kernel.name(), "POSV_LN");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernel;
mod op;
mod registry;
mod sym;

pub use gmc_pattern::FlatTermScratch;
pub use kernel::{Constraint, Kernel, KernelMatch, OpBuilder, ProductMatch};
pub use op::{InvKind, KernelFamily, KernelOp, Side, Uplo};
pub use registry::{KernelRegistry, RegistryBuilder};
pub use sym::FlopFormula;
