//! Kernel descriptors: pattern + constraints + cost + instantiation.

use crate::op::{KernelFamily, KernelOp};
use gmc_expr::{Operand, Property};
use gmc_pattern::{Bindings, Pattern, Var};
use std::fmt;

/// A side condition on a pattern match, evaluated on the bound operands
/// (the "Constraints" column of paper Table 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// The operand bound to the variable must have the property.
    Has(Var, Property),
    /// The operand bound to the variable must be a column vector.
    IsColVector(Var),
    /// The operand bound to the variable must not be a vector.
    IsNotVector(Var),
}

impl Constraint {
    /// Evaluates the constraint against a binding set.
    ///
    /// Unbound variables fail the constraint (a match that did not bind
    /// the variable cannot satisfy a condition on it).
    pub fn check(&self, bindings: &Bindings) -> bool {
        fn bound(bindings: &Bindings, v: Var) -> Option<&Operand> {
            bindings.get(v)
        }
        match self {
            Constraint::Has(v, p) => {
                bound(bindings, *v).is_some_and(|op| op.properties().contains(*p))
            }
            Constraint::IsColVector(v) => {
                bound(bindings, *v).is_some_and(|op| op.shape().is_col_vector())
            }
            Constraint::IsNotVector(v) => {
                bound(bindings, *v).is_some_and(|op| !op.shape().is_vector())
            }
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Has(v, p) => write!(f, "is {p}({v})"),
            Constraint::IsColVector(v) => write!(f, "is vector({v})"),
            Constraint::IsNotVector(v) => write!(f, "is matrix({v})"),
        }
    }
}

/// Builds a concrete [`KernelOp`] from the operands bound by a match.
pub type OpBuilder = Box<dyn Fn(&Bindings) -> KernelOp + Send + Sync>;

/// A computational kernel: an optimized routine for a well-defined
/// linear algebra problem (paper Sec. 1.1), described by a structural
/// [`Pattern`], property [`Constraint`]s, and an instantiation function.
pub struct Kernel {
    name: String,
    family: KernelFamily,
    pattern: Pattern,
    constraints: Vec<Constraint>,
    specificity: u8,
    builder: OpBuilder,
}

impl Kernel {
    /// Creates a kernel descriptor.
    pub fn new(
        name: impl Into<String>,
        family: KernelFamily,
        pattern: Pattern,
        constraints: Vec<Constraint>,
        specificity: u8,
        builder: OpBuilder,
    ) -> Self {
        Kernel {
            name: name.into(),
            family,
            pattern,
            constraints,
            specificity,
            builder,
        }
    }

    /// The kernel's name, e.g. `"TRMM_LLN"` (side, uplo, trans).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel's family.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// The structural pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The property constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// How specialized the kernel is; used to break cost ties in favor
    /// of the more specific routine (e.g. `GEMV` over `GEMM` for a
    /// matrix-vector product of identical FLOP count).
    pub fn specificity(&self) -> u8 {
        self.specificity
    }

    /// Instantiates the kernel for a set of bound operands.
    pub fn instantiate(&self, bindings: &Bindings) -> KernelOp {
        (self.builder)(bindings)
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Kernel({} : {}", self.name, self.pattern)?;
        for c in &self.constraints {
            write!(f, ", {c}")?;
        }
        write!(f, ")")
    }
}

/// A successful kernel match: the kernel plus the instantiated operation.
#[derive(Debug)]
pub struct KernelMatch<'r> {
    /// The matched kernel.
    pub kernel: &'r Kernel,
    /// The concrete operation (with operands and flags filled in).
    pub op: KernelOp,
}

impl KernelMatch<'_> {
    /// FLOP count of the instantiated operation.
    pub fn flops(&self) -> f64 {
        self.op.flops()
    }
}

/// A kernel selected for a binary product by
/// [`best_product_match`](crate::KernelRegistry::best_product_match):
/// a [`KernelMatch`] with the metric cost of the instantiated operation
/// computed exactly once and threaded along, instead of being
/// re-evaluated per comparison and once more by the caller.
#[derive(Debug)]
pub struct ProductMatch<'r, C> {
    /// The matched kernel.
    pub kernel: &'r Kernel,
    /// The concrete operation (with operands and flags filled in).
    pub op: KernelOp,
    /// The metric cost of `op`.
    pub cost: C,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::Operand;

    #[test]
    fn constraint_checks() {
        let x = Var::new(0);
        let lo = Operand::square("L", 4).with_property(Property::LowerTriangular);
        let mut b = Bindings::new();
        b.bind(x, &lo);
        assert!(Constraint::Has(x, Property::LowerTriangular).check(&b));
        assert!(!Constraint::Has(x, Property::Diagonal).check(&b));
        assert!(!Constraint::IsColVector(x).check(&b));
        assert!(Constraint::IsNotVector(x).check(&b));

        let v = Operand::col_vector("v", 4);
        let mut b = Bindings::new();
        b.bind(x, &v);
        assert!(Constraint::IsColVector(x).check(&b));
        assert!(!Constraint::IsNotVector(x).check(&b));
    }

    #[test]
    fn unbound_variable_fails_constraints() {
        let x = Var::new(0);
        let b = Bindings::new();
        assert!(!Constraint::Has(x, Property::Symmetric).check(&b));
        assert!(!Constraint::IsColVector(x).check(&b));
    }

    #[test]
    fn constraint_display() {
        let x = Var::new(0);
        let c = Constraint::Has(x, Property::LowerTriangular);
        assert_eq!(c.to_string(), "is LowerTriangular(?0)");
    }
}
