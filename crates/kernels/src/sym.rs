//! Symbolic kernel costs: exact FLOP formulas over dimension variables.
//!
//! [`FlopFormula`] captures the *shape-level structure* of a kernel
//! operation's FLOP count — which symbolic dimensions enter the formula
//! and how — independent of any particular operands. It serves two
//! purposes in the symbolic pipeline:
//!
//! * [`FlopFormula::eval`] reproduces [`KernelOp::flops`] **bit for
//!   bit**: each variant performs the same `f64` operations in the same
//!   order as the corresponding arm of `flops`, so a cached symbolic
//!   plan instantiated at concrete sizes yields costs identical to a
//!   from-scratch concrete solve.
//! * [`FlopFormula::poly`] lifts the formula to a [`CostPoly`], on
//!   which the symbolic optimizer decides split dominance.

use crate::op::{InvKind, KernelOp};
use gmc_expr::{CostPoly, Dim, DimBindings, DimError, SymShape};

/// The FLOP count of a kernel operation as a function of symbolic
/// dimensions (paper Table 1 / Sec. 2 footnote conventions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlopFormula {
    /// GEMM: `2.0 * m * n * k`.
    Gemm {
        /// Result rows.
        m: Dim,
        /// Inner dimension.
        k: Dim,
        /// Result columns.
        n: Dim,
    },
    /// TRMM / SYMM / TRSM: `m * m * n` (structured operand dimension
    /// `m`, free dimension `n`).
    Level3 {
        /// Structured (square) operand dimension.
        m: Dim,
        /// Free dimension of the general operand.
        n: Dim,
    },
    /// SYRK: `m * m * k`.
    Syrk {
        /// Result dimension.
        m: Dim,
        /// Inner dimension.
        k: Dim,
    },
    /// GESV: `2/3·m³ + 2·m²·n`.
    Gesv {
        /// Solve dimension.
        m: Dim,
        /// Right-hand-side free dimension.
        n: Dim,
    },
    /// POSV: `1/3·m³ + 2·m²·n`.
    Posv {
        /// Solve dimension.
        m: Dim,
        /// Right-hand-side free dimension.
        n: Dim,
    },
    /// Diagonal multiply/solve: `r·c` entries.
    EntryCount {
        /// Rows of the general operand.
        r: Dim,
        /// Columns of the general operand.
        c: Dim,
    },
    /// GEMV / GER: `2·(r·c)`.
    TwiceEntryCount {
        /// First dimension.
        r: Dim,
        /// Second dimension.
        c: Dim,
    },
    /// TRMV / TRSV: `n·n`.
    SquareN {
        /// Triangular dimension.
        n: Dim,
    },
    /// SYMV: `2·n·n`.
    TwiceSquareN {
        /// Symmetric dimension.
        n: Dim,
    },
    /// DOT: `2·n`.
    TwiceN {
        /// Vector length.
        n: Dim,
    },
    /// COPY: zero FLOPs.
    Zero,
    /// Explicit inversion, by structure kind.
    Inv {
        /// Which factorization computes the inverse.
        kind: InvKind,
        /// The (square) dimension.
        n: Dim,
    },
    /// Composite inverse pair: `(2 + 2/3 + 2)·m³`.
    InvPair {
        /// The (square) dimension.
        m: Dim,
    },
}

fn apply_t(t: bool, s: SymShape) -> SymShape {
    if t {
        s.transposed()
    } else {
        s
    }
}

impl FlopFormula {
    /// Derives the formula for `op`, resolving each operand's symbolic
    /// shape by name through `shapes`.
    ///
    /// Branches that [`KernelOp::flops`] decides by comparing *concrete*
    /// dimensions (the free-dimension choice of the structured level-3
    /// kernels) are decided here from the operation's concrete operand
    /// shapes; within one size region (fixed ordering pattern of the
    /// chain dimensions) those branches are invariant, which is what
    /// makes the formula cacheable per region.
    pub fn from_op(op: &KernelOp, mut shapes: impl FnMut(&str) -> SymShape) -> FlopFormula {
        let shapes: &mut dyn FnMut(&str) -> SymShape = &mut shapes;
        // The free dimension of `b`: the one not shared with the square
        // structured operand `a` (mirror of `other_dim` in `op.rs`).
        fn other_dim(
            shapes: &mut dyn FnMut(&str) -> SymShape,
            a: &gmc_expr::Operand,
            b: &gmc_expr::Operand,
        ) -> Dim {
            let sb = shapes(b.name());
            if b.shape().rows() == a.shape().rows() {
                sb.cols()
            } else {
                sb.rows()
            }
        }
        match op {
            KernelOp::Gemm { ta, tb, a, b } => {
                let sa = apply_t(*ta, shapes(a.name()));
                let sb = apply_t(*tb, shapes(b.name()));
                FlopFormula::Gemm {
                    m: sa.rows(),
                    k: sa.cols(),
                    n: sb.cols(),
                }
            }
            KernelOp::Trmm { a, b, .. } | KernelOp::Symm { a, b, .. } => FlopFormula::Level3 {
                m: shapes(a.name()).rows(),
                n: other_dim(shapes, a, b),
            },
            KernelOp::Trsm { a, b, .. } => FlopFormula::Level3 {
                m: shapes(a.name()).rows(),
                n: other_dim(shapes, a, b),
            },
            KernelOp::Syrk { trans, a } => {
                let s = shapes(a.name());
                let (m, k) = if *trans {
                    (s.cols(), s.rows())
                } else {
                    (s.rows(), s.cols())
                };
                FlopFormula::Syrk { m, k }
            }
            KernelOp::Gesv { a, b, .. } => FlopFormula::Gesv {
                m: shapes(a.name()).rows(),
                n: other_dim(shapes, a, b),
            },
            KernelOp::Posv { a, b, .. } => FlopFormula::Posv {
                m: shapes(a.name()).rows(),
                n: other_dim(shapes, a, b),
            },
            KernelOp::Diag { b, .. } => {
                let s = shapes(b.name());
                FlopFormula::EntryCount {
                    r: s.rows(),
                    c: s.cols(),
                }
            }
            KernelOp::Gemv { a, .. } => {
                let s = shapes(a.name());
                FlopFormula::TwiceEntryCount {
                    r: s.rows(),
                    c: s.cols(),
                }
            }
            KernelOp::Trmv { a, .. } | KernelOp::Trsv { a, .. } => FlopFormula::SquareN {
                n: shapes(a.name()).rows(),
            },
            KernelOp::Symv { a, .. } => FlopFormula::TwiceSquareN {
                n: shapes(a.name()).rows(),
            },
            KernelOp::Ger { x, y } => FlopFormula::TwiceEntryCount {
                r: shapes(x.name()).rows(),
                c: shapes(y.name()).rows(),
            },
            KernelOp::Dot { x, .. } => FlopFormula::TwiceN {
                n: shapes(x.name()).rows(),
            },
            KernelOp::Copy { .. } => FlopFormula::Zero,
            KernelOp::Inv { kind, a, .. } => FlopFormula::Inv {
                kind: *kind,
                n: shapes(a.name()).rows(),
            },
            KernelOp::InvPair { a, .. } => FlopFormula::InvPair {
                m: shapes(a.name()).rows(),
            },
        }
    }

    /// Evaluates the formula at concrete sizes.
    ///
    /// Performs the exact same `f64` operations, in the same order, as
    /// the matching arm of [`KernelOp::flops`], so the result is
    /// bit-identical to instantiating the operation and calling `flops`.
    ///
    /// # Errors
    ///
    /// Propagates [`DimError`] for unbound variables or zero sizes.
    pub fn eval(&self, bindings: &DimBindings) -> Result<f64, DimError> {
        let d = |dim: &Dim| dim.bind(bindings);
        Ok(match self {
            FlopFormula::Gemm { m, k, n } => {
                let (m, k, n) = (d(m)? as f64, d(k)? as f64, d(n)? as f64);
                2.0 * m * n * k
            }
            FlopFormula::Level3 { m, n } => {
                let m = d(m)? as f64;
                let n = d(n)? as f64;
                m * m * n
            }
            FlopFormula::Syrk { m, k } => {
                let (m, k) = (d(m)? as f64, d(k)? as f64);
                m * m * k
            }
            FlopFormula::Gesv { m, n } => {
                let m = d(m)? as f64;
                let n = d(n)? as f64;
                2.0 / 3.0 * m * m * m + 2.0 * m * m * n
            }
            FlopFormula::Posv { m, n } => {
                let m = d(m)? as f64;
                let n = d(n)? as f64;
                1.0 / 3.0 * m * m * m + 2.0 * m * m * n
            }
            FlopFormula::EntryCount { r, c } => (d(r)? * d(c)?) as f64,
            FlopFormula::TwiceEntryCount { r, c } => 2.0 * (d(r)? * d(c)?) as f64,
            FlopFormula::SquareN { n } => {
                let n = d(n)? as f64;
                n * n
            }
            FlopFormula::TwiceSquareN { n } => {
                let n = d(n)? as f64;
                2.0 * n * n
            }
            FlopFormula::TwiceN { n } => 2.0 * d(n)? as f64,
            FlopFormula::Zero => 0.0,
            FlopFormula::Inv { kind, n } => {
                let n = d(n)? as f64;
                match kind {
                    InvKind::General => 2.0 * n * n * n,
                    InvKind::Spd => n * n * n,
                    InvKind::Triangular(_) => n * n * n / 3.0,
                    InvKind::Diagonal => n,
                }
            }
            FlopFormula::InvPair { m } => {
                let m = d(m)? as f64;
                (2.0 + 2.0 / 3.0 + 2.0) * m * m * m
            }
        })
    }

    /// The formula as a multivariate polynomial in the dimension
    /// variables, for dominance comparisons in the symbolic optimizer.
    pub fn poly(&self) -> CostPoly {
        let p = CostPoly::from_dim;
        match self {
            FlopFormula::Gemm { m, k, n } => p(*m).mul(&p(*n)).mul(&p(*k)).scale(2.0),
            FlopFormula::Level3 { m, n } => p(*m).mul(&p(*m)).mul(&p(*n)),
            FlopFormula::Syrk { m, k } => p(*m).mul(&p(*m)).mul(&p(*k)),
            FlopFormula::Gesv { m, n } => {
                let m3 = p(*m).mul(&p(*m)).mul(&p(*m));
                let m2n = p(*m).mul(&p(*m)).mul(&p(*n));
                m3.scale(2.0 / 3.0).add(&m2n.scale(2.0))
            }
            FlopFormula::Posv { m, n } => {
                let m3 = p(*m).mul(&p(*m)).mul(&p(*m));
                let m2n = p(*m).mul(&p(*m)).mul(&p(*n));
                m3.scale(1.0 / 3.0).add(&m2n.scale(2.0))
            }
            FlopFormula::EntryCount { r, c } => p(*r).mul(&p(*c)),
            FlopFormula::TwiceEntryCount { r, c } => p(*r).mul(&p(*c)).scale(2.0),
            FlopFormula::SquareN { n } => p(*n).mul(&p(*n)),
            FlopFormula::TwiceSquareN { n } => p(*n).mul(&p(*n)).scale(2.0),
            FlopFormula::TwiceN { n } => p(*n).scale(2.0),
            FlopFormula::Zero => CostPoly::zero(),
            FlopFormula::Inv { kind, n } => {
                let n3 = p(*n).mul(&p(*n)).mul(&p(*n));
                match kind {
                    InvKind::General => n3.scale(2.0),
                    InvKind::Spd => n3,
                    InvKind::Triangular(_) => n3.scale(1.0 / 3.0),
                    InvKind::Diagonal => p(*n),
                }
            }
            FlopFormula::InvPair { m } => {
                p(*m).mul(&p(*m)).mul(&p(*m)).scale(2.0 + 2.0 / 3.0 + 2.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Side, Uplo};
    use gmc_expr::{Operand, Property, Shape};
    use std::collections::HashMap;

    /// Builds a resolver that lifts each operand's concrete shape to a
    /// constant symbolic shape, so `eval` must reproduce `flops` exactly.
    fn const_resolver(ops: &[&Operand]) -> impl FnMut(&str) -> SymShape {
        let map: HashMap<String, Shape> = ops
            .iter()
            .map(|o| (o.name().to_owned(), o.shape()))
            .collect();
        move |name: &str| map[name].to_sym()
    }

    fn check_exact(op: KernelOp, operands: &[&Operand]) {
        let f = FlopFormula::from_op(&op, const_resolver(operands));
        let got = f.eval(&DimBindings::new()).unwrap();
        assert_eq!(
            got.to_bits(),
            op.flops().to_bits(),
            "formula {f:?} diverged from flops() for {op}"
        );
        // Polynomial evaluation agrees up to floating-point association.
        let poly = f.poly().eval(&DimBindings::new()).unwrap();
        assert!((poly - op.flops()).abs() <= 1e-9 * op.flops().abs().max(1.0));
    }

    #[test]
    fn formulas_reproduce_flops_bit_for_bit() {
        let a = Operand::matrix("A", 37, 23);
        let b = Operand::matrix("B", 23, 41);
        let tri = Operand::square("L", 23).with_property(Property::LowerTriangular);
        let bb = Operand::matrix("C", 23, 17);
        let spd = Operand::square("S", 23).with_property(Property::SymmetricPositiveDefinite);
        let d = Operand::square("D", 23).with_property(Property::Diagonal);
        let x = Operand::col_vector("x", 23);
        let y = Operand::col_vector("y", 17);

        check_exact(
            KernelOp::Gemm {
                ta: false,
                tb: false,
                a: a.clone(),
                b: b.clone(),
            },
            &[&a, &b],
        );
        check_exact(
            KernelOp::Gemm {
                ta: true,
                tb: true,
                a: b.clone(),
                b: a.clone(),
            },
            &[&a, &b],
        );
        check_exact(
            KernelOp::Trmm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: false,
                a: tri.clone(),
                b: bb.clone(),
            },
            &[&tri, &bb],
        );
        // Right-side structured operand exercises the free-dimension
        // branch of `other_dim`.
        let wide = Operand::matrix("W", 17, 23);
        check_exact(
            KernelOp::Trmm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: false,
                a: tri.clone(),
                b: wide.clone(),
            },
            &[&tri, &wide],
        );
        check_exact(
            KernelOp::Trsm {
                side: Side::Left,
                uplo: Uplo::Lower,
                trans: true,
                tb: false,
                a: tri.clone(),
                b: bb.clone(),
            },
            &[&tri, &bb],
        );
        check_exact(
            KernelOp::Symm {
                side: Side::Left,
                a: spd.clone(),
                b: bb.clone(),
            },
            &[&spd, &bb],
        );
        check_exact(
            KernelOp::Syrk {
                trans: true,
                a: a.clone(),
            },
            &[&a],
        );
        check_exact(
            KernelOp::Gesv {
                side: Side::Left,
                trans: false,
                tb: false,
                a: tri.clone(),
                b: bb.clone(),
            },
            &[&tri, &bb],
        );
        check_exact(
            KernelOp::Posv {
                side: Side::Left,
                tb: false,
                a: spd.clone(),
                b: bb.clone(),
            },
            &[&spd, &bb],
        );
        check_exact(
            KernelOp::Diag {
                side: Side::Left,
                inv: true,
                tb: false,
                d: d.clone(),
                b: bb.clone(),
            },
            &[&d, &bb],
        );
        check_exact(
            KernelOp::Gemv {
                trans: false,
                a: a.clone(),
                x: x.clone(),
            },
            &[&a, &x],
        );
        check_exact(
            KernelOp::Trmv {
                uplo: Uplo::Lower,
                trans: false,
                a: tri.clone(),
                x: x.clone(),
            },
            &[&tri, &x],
        );
        check_exact(
            KernelOp::Symv {
                a: spd.clone(),
                x: x.clone(),
            },
            &[&spd, &x],
        );
        check_exact(
            KernelOp::Trsv {
                uplo: Uplo::Upper,
                trans: true,
                a: tri.clone(),
                x: x.clone(),
            },
            &[&tri, &x],
        );
        check_exact(
            KernelOp::Ger {
                x: x.clone(),
                y: y.clone(),
            },
            &[&x, &y],
        );
        check_exact(
            KernelOp::Dot {
                x: x.clone(),
                y: x.clone(),
            },
            &[&x],
        );
        check_exact(KernelOp::Copy { b: bb.clone() }, &[&bb]);
        for kind in [
            InvKind::General,
            InvKind::Spd,
            InvKind::Triangular(Uplo::Lower),
            InvKind::Diagonal,
        ] {
            check_exact(
                KernelOp::Inv {
                    kind,
                    trans: false,
                    a: spd.clone(),
                },
                &[&spd],
            );
        }
        check_exact(
            KernelOp::InvPair {
                ta: false,
                tb: false,
                a: spd.clone(),
                b: spd.clone(),
            },
            &[&spd],
        );
    }

    #[test]
    fn symbolic_formula_evaluates_per_binding() {
        let n = Dim::var("kf_n");
        let m = Dim::var("kf_m");
        let f = FlopFormula::Gemm { m: n, k: n, n: m };
        let b = DimBindings::new().with("kf_n", 10).with("kf_m", 3);
        assert_eq!(f.eval(&b).unwrap(), 2.0 * 10.0 * 3.0 * 10.0);
        assert!(f.eval(&DimBindings::new()).is_err());
        let poly = f.poly();
        assert_eq!(poly.eval(&b).unwrap(), 600.0);
        assert_eq!(poly.degree(), 3);
    }

    #[test]
    fn gemv_dominates_gemm_on_matrix_vector_products() {
        // GEMV and GEMM on an n×m · m×1 product cost the same
        // polynomial; TRMV on a square n×n · n×1 strictly dominates
        // GEMM's 2n².
        let n = Dim::var("kf2_n");
        let trmv = FlopFormula::SquareN { n }.poly();
        let gemm = FlopFormula::Gemm {
            m: n,
            k: n,
            n: Dim::Const(1),
        }
        .poly();
        assert!(trmv.dominated_by(&gemm));
        assert!(!gemm.dominated_by(&trmv));
    }
}
