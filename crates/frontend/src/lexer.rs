//! Lexer for the Linnea-style input language (paper Fig. 1–2).

use std::fmt;

/// A token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// `Matrix` keyword.
    Matrix,
    /// `Vector` keyword (sugar for `n×1` matrices).
    Vector,
    /// An identifier (operand or property name).
    Ident(String),
    /// An integer literal.
    Int(usize),
    /// `:=`.
    Assign,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `<`.
    LAngle,
    /// `>`.
    RAngle,
    /// `,`.
    Comma,
    /// `+`.
    Plus,
    /// `*`.
    Star,
    /// `^T`.
    Transpose,
    /// `^-1`.
    Inverse,
    /// `^-T`.
    InverseTranspose,
    /// `'` (transpose shorthand, Matlab/Julia style).
    Tick,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Matrix => write!(f, "`Matrix`"),
            Tok::Vector => write!(f, "`Vector`"),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Assign => write!(f, "`:=`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LAngle => write!(f, "`<`"),
            Tok::RAngle => write!(f, "`>`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Transpose => write!(f, "`^T`"),
            Tok::Inverse => write!(f, "`^-1`"),
            Tok::InverseTranspose => write!(f, "`^-T`"),
            Tok::Tick => write!(f, "`'`"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// A lexing error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the input. `#` starts a line comment.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = input.chars().peekable();

    macro_rules! push {
        ($tok:expr, $c:expr) => {
            out.push(Token {
                tok: $tok,
                line,
                col: $c,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let start_col = col;
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        col = 1;
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                col += 1;
                push!(Tok::LParen, start_col);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(Tok::RParen, start_col);
            }
            '<' => {
                chars.next();
                col += 1;
                push!(Tok::LAngle, start_col);
            }
            '>' => {
                chars.next();
                col += 1;
                push!(Tok::RAngle, start_col);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(Tok::Comma, start_col);
            }
            '+' => {
                chars.next();
                col += 1;
                push!(Tok::Plus, start_col);
            }
            '*' => {
                chars.next();
                col += 1;
                push!(Tok::Star, start_col);
            }
            '\'' => {
                chars.next();
                col += 1;
                push!(Tok::Tick, start_col);
            }
            ':' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(Tok::Assign, start_col);
                } else {
                    return Err(LexError {
                        message: "expected `=` after `:`".into(),
                        line,
                        col,
                    });
                }
            }
            '^' => {
                chars.next();
                col += 1;
                match chars.peek() {
                    Some('T') => {
                        chars.next();
                        col += 1;
                        push!(Tok::Transpose, start_col);
                    }
                    Some('-') => {
                        chars.next();
                        col += 1;
                        match chars.peek() {
                            Some('1') => {
                                chars.next();
                                col += 1;
                                push!(Tok::Inverse, start_col);
                            }
                            Some('T') => {
                                chars.next();
                                col += 1;
                                push!(Tok::InverseTranspose, start_col);
                            }
                            _ => {
                                return Err(LexError {
                                    message: "expected `1` or `T` after `^-`".into(),
                                    line,
                                    col,
                                })
                            }
                        }
                    }
                    _ => {
                        return Err(LexError {
                            message: "expected `T`, `-1` or `-T` after `^`".into(),
                            line,
                            col,
                        })
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let mut value = 0usize;
                while let Some(&d) = chars.peek() {
                    if let Some(dv) = d.to_digit(10) {
                        value = value
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(dv as usize))
                            .ok_or_else(|| LexError {
                                message: "integer literal too large".into(),
                                line,
                                col,
                            })?;
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Int(value), start_col);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        name.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let tok = match name.as_str() {
                    "Matrix" => Tok::Matrix,
                    "Vector" => Tok::Vector,
                    _ => Tok::Ident(name),
                };
                push!(tok, start_col);
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line,
                    col,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Tok> {
        lex(input).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_definition() {
        let toks = kinds("Matrix A (100, 200) <LowerTriangular, SPD>");
        assert_eq!(
            toks,
            vec![
                Tok::Matrix,
                Tok::Ident("A".into()),
                Tok::LParen,
                Tok::Int(100),
                Tok::Comma,
                Tok::Int(200),
                Tok::RParen,
                Tok::LAngle,
                Tok::Ident("LowerTriangular".into()),
                Tok::Comma,
                Tok::Ident("SPD".into()),
                Tok::RAngle,
            ]
        );
    }

    #[test]
    fn lexes_assignment_with_operators() {
        let toks = kinds("X := A^-1 * B * C^T + D^-T");
        assert!(toks.contains(&Tok::Assign));
        assert!(toks.contains(&Tok::Inverse));
        assert!(toks.contains(&Tok::Transpose));
        assert!(toks.contains(&Tok::InverseTranspose));
        assert!(toks.contains(&Tok::Plus));
    }

    #[test]
    fn tick_shorthand() {
        assert_eq!(kinds("A'"), vec![Tok::Ident("A".into()), Tok::Tick]);
    }

    #[test]
    fn comments_and_positions() {
        let toks = lex("A # comment\nB").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].col, 1);
    }

    #[test]
    fn error_positions() {
        let err = lex("A ^x").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("after `^`"));
        let err = lex("A : B").unwrap_err();
        assert!(err.message.contains("after `:`"));
        let err = lex("A $ B").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }
}
