//! Rendering: caret-style error display against the source text, and
//! rendering a parsed [`Problem`] back to input-language source
//! (including symbolic dimension identifiers).

use crate::parser::Problem;
use crate::ParseError;
use gmc_expr::{Dim, Expr, SymChain};

/// Renders a parse error with the offending source line and a caret:
///
/// ```text
/// error: operand `Q` is not defined
///   --> 2:10
///    |
///  2 | X := A * Q
///    |          ^
/// ```
pub fn render_error(source: &str, error: &ParseError) -> String {
    let mut out = format!("error: {}\n", error.message);
    if error.line == 0 {
        out.push_str("  --> end of input\n");
        return out;
    }
    out.push_str(&format!("  --> {}:{}\n", error.line, error.col));
    if let Some(line) = source.lines().nth(error.line - 1) {
        let gutter = error.line.to_string();
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!(" {pad} |\n"));
        out.push_str(&format!(" {gutter} | {line}\n"));
        let caret_pad = " ".repeat(error.col.saturating_sub(1));
        out.push_str(&format!(" {pad} | {caret_pad}^\n"));
    }
    out
}

/// Renders a parsed problem back to input-language source text.
///
/// Round-trips through [`crate::parse`]: definitions (with symbolic
/// dimension identifiers rendered as such, `n×1` shapes rendered as
/// `Vector` definitions, properties in `<...>` lists) followed by the
/// assignments. In mixed problems the concrete assignments render
/// before the symbolic ones, matching how [`Problem`] partitions them.
///
/// ```
/// use gmc_frontend::{parse, render_problem};
///
/// let src = "Matrix A (n, n) <SPD>\nMatrix B (n, m)\nX := A^-1 * B\n";
/// let rendered = render_problem(&parse(src).unwrap());
/// assert_eq!(rendered, src);
/// ```
pub fn render_problem(problem: &Problem) -> String {
    let mut out = String::new();
    match &problem.symbolic {
        // `symbolic.operands` carries every definition (concrete dims
        // as constants), so it is the single source for definitions.
        Some(sym) => {
            for op in &sym.operands {
                render_definition(
                    &mut out,
                    op.name(),
                    op.shape().rows(),
                    op.shape().cols(),
                    op.properties(),
                );
            }
        }
        None => {
            for op in &problem.operands {
                render_definition(
                    &mut out,
                    op.name(),
                    Dim::Const(op.shape().rows()),
                    Dim::Const(op.shape().cols()),
                    op.properties(),
                );
            }
        }
    }
    for (target, expr) in &problem.assignments {
        out.push_str(&format!("{target} := {}\n", render_expr(expr)));
    }
    if let Some(sym) = &problem.symbolic {
        for (target, chain) in &sym.chains {
            out.push_str(&format!("{target} := {}\n", render_chain(chain)));
        }
    }
    out
}

fn render_definition(
    out: &mut String,
    name: &str,
    rows: Dim,
    cols: Dim,
    props: gmc_expr::PropertySet,
) {
    let mut line = if cols == Dim::Const(1) && rows != Dim::Const(1) {
        format!("Vector {name} ({rows})")
    } else {
        format!("Matrix {name} ({rows}, {cols})")
    };
    line.push_str(&render_properties(props));
    out.push_str(&line);
    out.push('\n');
}

fn render_properties(ps: gmc_expr::PropertySet) -> String {
    if ps.is_empty() {
        return String::new();
    }
    // Render only the generators: drop properties implied by another
    // member, so `<SPD>` does not round-trip as `<Symmetric, SPD, ...>`.
    let members: Vec<_> = ps.iter().collect();
    let generators: Vec<&str> = members
        .iter()
        .filter(|p| {
            !members
                .iter()
                .any(|q| q != *p && gmc_expr::PropertySet::new().with(*q).contains(**p))
        })
        .map(|p| p.name())
        .collect();
    format!(" <{}>", generators.join(", "))
}

/// Renders an expression in input-language syntax (explicit `*`).
fn render_expr(e: &Expr) -> String {
    fn prec(e: &Expr) -> u8 {
        match e {
            Expr::Plus(_) => 0,
            Expr::Times(_) => 1,
            Expr::Transpose(_) | Expr::Inverse(_) | Expr::InverseTranspose(_) => 2,
            Expr::Symbol(_) => 3,
        }
    }
    fn go(e: &Expr, min: u8, out: &mut String) {
        let parens = prec(e) < min;
        if parens {
            out.push('(');
        }
        match e {
            Expr::Symbol(op) => out.push_str(op.name()),
            Expr::Times(fs) => {
                for (i, f) in fs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" * ");
                    }
                    go(f, 2, out);
                }
            }
            Expr::Plus(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" + ");
                    }
                    go(t, 1, out);
                }
            }
            Expr::Transpose(inner) => {
                go(inner, 3, out);
                out.push_str("^T");
            }
            Expr::Inverse(inner) => {
                go(inner, 3, out);
                out.push_str("^-1");
            }
            Expr::InverseTranspose(inner) => {
                go(inner, 3, out);
                out.push_str("^-T");
            }
        }
        if parens {
            out.push(')');
        }
    }
    let mut out = String::new();
    go(e, 0, &mut out);
    out
}

fn render_chain(chain: &SymChain) -> String {
    chain
        .factors()
        .iter()
        .map(|f| format!("{}{}", f.operand().name(), f.op().suffix()))
        .collect::<Vec<_>>()
        .join(" * ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn renders_line_and_caret() {
        let source = "Matrix A (5, 5)\nX := A * Q\n";
        let err = parse(source).unwrap_err();
        let text = render_error(source, &err);
        assert!(text.contains("error: operand `Q` is not defined"));
        assert!(text.contains("--> 2:10"));
        assert!(text.contains("2 | X := A * Q"));
        // The caret lines up under the Q: the gutter " 2 | " is five
        // characters, and Q is at column 10 (index 9 in the line).
        let caret_line = text.lines().last().unwrap();
        assert_eq!(caret_line.find('^'), Some(5 + 9));
        let source_line = text.lines().nth(text.lines().count() - 2).unwrap();
        assert_eq!(source_line.chars().nth(5 + 9), Some('Q'));
    }

    #[test]
    fn renders_end_of_input() {
        let source = "Matrix A (5, 5)";
        let err = parse(source).unwrap_err();
        let text = render_error(source, &err);
        assert!(text.contains("end of input"));
    }

    #[test]
    fn renders_lex_errors() {
        let source = "Matrix A (5, 5)\nX := A $ B\n";
        let err = parse(source).unwrap_err();
        let text = render_error(source, &err);
        assert!(text.contains("unexpected character"));
        assert!(text.contains("2 | X := A $ B"));
    }

    #[test]
    fn concrete_problem_round_trips() {
        let src = "Matrix A (2000, 2000) <SPD>\nMatrix B (2000, 200)\n\
                   Matrix C (200, 200) <LowerTriangular>\nX := A^-1 * B * C^T\n";
        let rendered = render_problem(&parse(src).unwrap());
        assert_eq!(rendered, src);
        // Idempotent: parse(render(p)) renders identically.
        assert_eq!(render_problem(&parse(&rendered).unwrap()), rendered);
    }

    #[test]
    fn symbolic_problem_round_trips() {
        let src = "Matrix A (n, n) <SPD>\nMatrix B (n, m)\nVector v (m)\nX := A^-1 * B * v\n";
        let p = parse(src).unwrap();
        assert!(p.is_symbolic());
        let rendered = render_problem(&p);
        assert_eq!(rendered, src);
        assert_eq!(render_problem(&parse(&rendered).unwrap()), rendered);
    }

    #[test]
    fn expression_rendering_parenthesizes() {
        let src = "Matrix A (5, 5)\nMatrix B (5, 5)\nX := (A + B) * B^T\n";
        let rendered = render_problem(&parse(src).unwrap());
        assert_eq!(rendered, src);
    }

    #[test]
    fn normalized_symbolic_assignments_render_flat() {
        // The parser distributes unary operators over symbolic
        // products, so the rendered form is the normalized chain.
        let p = parse("Matrix A (n, n)\nMatrix B (n, n)\nX := (A * B)^-1\n").unwrap();
        let rendered = render_problem(&p);
        assert!(rendered.contains("X := B^-1 * A^-1"), "{rendered}");
    }
}
