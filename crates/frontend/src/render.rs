//! Caret-style rendering of frontend errors against the source text.

use crate::parser::ParseError;

/// Renders a parse error with the offending source line and a caret:
///
/// ```text
/// error: operand `Q` is not defined
///   --> 2:10
///    |
///  2 | X := A * Q
///    |          ^
/// ```
pub fn render_error(source: &str, error: &ParseError) -> String {
    let mut out = format!("error: {}\n", error.message);
    if error.line == 0 {
        out.push_str("  --> end of input\n");
        return out;
    }
    out.push_str(&format!("  --> {}:{}\n", error.line, error.col));
    if let Some(line) = source.lines().nth(error.line - 1) {
        let gutter = error.line.to_string();
        let pad = " ".repeat(gutter.len());
        out.push_str(&format!(" {pad} |\n"));
        out.push_str(&format!(" {gutter} | {line}\n"));
        let caret_pad = " ".repeat(error.col.saturating_sub(1));
        out.push_str(&format!(" {pad} | {caret_pad}^\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn renders_line_and_caret() {
        let source = "Matrix A (5, 5)\nX := A * Q\n";
        let err = parse(source).unwrap_err();
        let text = render_error(source, &err);
        assert!(text.contains("error: operand `Q` is not defined"));
        assert!(text.contains("--> 2:10"));
        assert!(text.contains("2 | X := A * Q"));
        // The caret lines up under the Q: the gutter " 2 | " is five
        // characters, and Q is at column 10 (index 9 in the line).
        let caret_line = text.lines().last().unwrap();
        assert_eq!(caret_line.find('^'), Some(5 + 9));
        let source_line = text.lines().nth(text.lines().count() - 2).unwrap();
        assert_eq!(source_line.chars().nth(5 + 9), Some('Q'));
    }

    #[test]
    fn renders_end_of_input() {
        let source = "Matrix A (5, 5)";
        let err = parse(source).unwrap_err();
        let text = render_error(source, &err);
        assert!(text.contains("end of input"));
    }

    #[test]
    fn renders_lex_errors() {
        let source = "Matrix A (5, 5)\nX := A $ B\n";
        let err = parse(source).unwrap_err();
        let text = render_error(source, &err);
        assert!(text.contains("unexpected character"));
        assert!(text.contains("2 | X := A $ B"));
    }
}
