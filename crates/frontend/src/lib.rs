//! Frontend for the Linnea-style input language of the GMC paper
//! (Fig. 1–2): a lexer, a recursive-descent parser with positioned
//! error messages, and lowering to `gmc-expr` operands and expressions.
//!
//! # Example
//!
//! ```
//! use gmc_frontend::parse;
//! use gmc_expr::Chain;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let problem = parse(
//!     "Matrix A (2000, 2000) <SPD>\n\
//!      Matrix B (2000, 200)\n\
//!      Matrix C (200, 200) <LowerTriangular>\n\
//!      X := A^-1 * B * C^T\n",
//! )?;
//! let (target, expr) = &problem.assignments[0];
//! assert_eq!(target, "X");
//! let chain = Chain::from_expr(expr)?;
//! assert_eq!(chain.len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lexer;
mod parser;
mod render;

pub use lexer::{lex, LexError, Tok, Token};
pub use parser::{parse, ParseError, Problem, SymbolicProblem};
pub use render::{render_error, render_problem};
