//! Recursive-descent parser and lowering for the input language.
//!
//! Grammar (paper Fig. 1–2, with explicit `*` for products, a
//! Matlab-style `'` transpose shorthand, and dimensions that may be
//! *identifiers* — symbolic size variables):
//!
//! ```text
//! problem     → definition+ assignment+
//! definition  → ("Matrix" | "Vector") name "(" dim ("," dim)? ")" properties?
//! dim         → int | name
//! properties  → "<" name ("," name)* ">"
//! assignment  → name ":=" expr
//! expr        → term ("+" term)*
//! term        → factor ("*" factor)*
//! factor      → primary ("^T" | "^-1" | "^-T" | "'")*
//! primary     → name | "(" expr ")"
//! ```
//!
//! A problem whose definitions are all concrete lowers to [`Operand`]s
//! and [`Expr`]s exactly as before. As soon as one dimension is an
//! identifier (`Matrix A (n, m)`), the problem lowers to a
//! [`SymbolicProblem`] instead: symbolic operands plus one [`SymChain`]
//! per assignment, ready for `gmc-plan`'s cache. Symbolic assignments
//! must be products (sums have no chain form).

use crate::lexer::{lex, LexError, Tok, Token};
use gmc_expr::{Dim, Expr, Operand, Property, Shape, SymChain, SymFactor, SymOperand};
use std::collections::HashMap;
use std::fmt;

/// A parsed problem: operand definitions plus assignments.
///
/// Assignments are split by what they reference: those touching only
/// concretely-sized operands lower to [`Expr`]s in `assignments`
/// (exactly as before symbolic dimensions existed), while assignments
/// referencing at least one symbolically-sized operand lower to
/// [`SymChain`]s in `symbolic`. `symbolic` is `Some` iff any
/// definition uses an identifier dimension; its `operands` list always
/// carries *every* definition (concrete ones with constant dims).
#[derive(Clone, Debug)]
pub struct Problem {
    /// Concretely-sized operands, in definition order.
    pub operands: Vec<Operand>,
    /// Assignments referencing only concrete operands, in order.
    pub assignments: Vec<(String, Expr)>,
    /// The symbolic lowering, when any dimension is an identifier.
    pub symbolic: Option<SymbolicProblem>,
}

/// A problem with symbolic dimensions.
#[derive(Clone, Debug)]
pub struct SymbolicProblem {
    /// Defined operands, in definition order.
    pub operands: Vec<SymOperand>,
    /// `(target name, chain)` pairs, in order.
    pub chains: Vec<(String, SymChain)>,
}

impl SymbolicProblem {
    /// Looks up a defined operand by name.
    pub fn operand(&self, name: &str) -> Option<&SymOperand> {
        self.operands.iter().find(|o| o.name() == name)
    }
}

impl Problem {
    /// Looks up a defined concrete operand by name.
    pub fn operand(&self, name: &str) -> Option<&Operand> {
        self.operands.iter().find(|o| o.name() == name)
    }

    /// Whether the problem uses symbolic dimensions.
    pub fn is_symbolic(&self) -> bool {
        self.symbolic.is_some()
    }
}

/// A parse (or lowering) error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based line (0 for end-of-input).
    pub line: usize,
    /// 1-based column (0 for end-of-input).
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "end of input: {}", self.message)
        } else {
            write!(f, "{}:{}: {}", self.line, self.col, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// The structural right-hand side of an assignment, before lowering.
#[derive(Clone, Debug)]
enum RawExpr {
    Ref(String),
    Mul(Vec<RawExpr>),
    Add(Vec<RawExpr>),
    Transpose(Box<RawExpr>),
    Inverse(Box<RawExpr>),
    InverseTranspose(Box<RawExpr>),
}

/// Parses a complete problem description.
///
/// # Errors
///
/// Returns a [`ParseError`] with the source position of the first
/// offending token; lowering errors (unknown operand, duplicate
/// definition, unknown property, property on a non-square matrix, zero
/// dimensions, malformed symbolic chains) are reported the same way.
pub fn parse(input: &str) -> Result<Problem, ParseError> {
    let tokens = lex(input)?;
    Parser {
        tokens,
        pos: 0,
        operands: HashMap::new(),
        order: Vec::new(),
    }
    .problem()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    operands: HashMap<String, SymOperand>,
    order: Vec<String>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_at(&self, message: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(t) => ParseError {
                message: message.into(),
                line: t.line,
                col: t.col,
            },
            None => ParseError {
                message: message.into(),
                line: 0,
                col: 0,
            },
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<Token, ParseError> {
        match self.peek() {
            Some(t) if t.tok == *want => Ok(self.next().expect("peeked")),
            Some(t) => Err(ParseError {
                message: format!("expected {want}, found {}", t.tok),
                line: t.line,
                col: t.col,
            }),
            None => Err(self.error_at(format!("expected {want}"))),
        }
    }

    fn ident(&mut self) -> Result<(String, usize, usize), ParseError> {
        match self.peek().cloned() {
            Some(Token {
                tok: Tok::Ident(name),
                line,
                col,
            }) => {
                self.next();
                Ok((name, line, col))
            }
            Some(t) => Err(ParseError {
                message: format!("expected identifier, found {}", t.tok),
                line: t.line,
                col: t.col,
            }),
            None => Err(self.error_at("expected identifier")),
        }
    }

    /// A dimension: an integer literal or a size-variable identifier.
    fn dim(&mut self) -> Result<(Dim, usize, usize), ParseError> {
        match self.peek().cloned() {
            Some(Token {
                tok: Tok::Int(v),
                line,
                col,
            }) => {
                self.next();
                Ok((Dim::Const(v), line, col))
            }
            Some(Token {
                tok: Tok::Ident(name),
                line,
                col,
            }) => {
                self.next();
                Ok((Dim::var(&name), line, col))
            }
            _ => Err(self.error_at("expected a dimension (integer or identifier)")),
        }
    }

    fn problem(mut self) -> Result<Problem, ParseError> {
        let mut raw_assignments: Vec<(String, usize, usize, RawExpr)> = Vec::new();
        while self.peek().is_some() {
            match self.peek().map(|t| t.tok.clone()) {
                Some(Tok::Matrix) | Some(Tok::Vector) => self.definition()?,
                Some(Tok::Ident(_)) => {
                    let (target, line, col) = self.ident()?;
                    self.expect(&Tok::Assign)?;
                    let raw = self.expr()?;
                    raw_assignments.push((target, line, col, raw));
                }
                _ => return Err(self.error_at("expected a definition or an assignment")),
            }
        }
        if raw_assignments.is_empty() {
            return Err(ParseError {
                message: "problem contains no assignment".into(),
                line: 0,
                col: 0,
            });
        }

        let symbolic_problem = self
            .order
            .iter()
            .any(|n| self.operands[n].shape().is_symbolic());

        // Concretely-sized operands lower eagerly; assignments that
        // reference only these stay on the concrete path even when
        // other definitions are symbolic.
        let concrete: HashMap<String, Operand> = self
            .operands
            .iter()
            .filter(|(_, op)| !op.shape().is_symbolic())
            .map(|(n, op)| {
                let bound = op
                    .bind(&gmc_expr::DimBindings::new())
                    .expect("concrete operands have validated positive dimensions");
                (n.clone(), bound)
            })
            .collect();
        let operands: Vec<Operand> = self
            .order
            .iter()
            .filter_map(|n| concrete.get(n).cloned())
            .collect();

        let mut assignments = Vec::new();
        let mut chains = Vec::new();
        for (target, line, col, raw) in raw_assignments {
            let mut refs_symbolic = false;
            collect_refs(&raw, &mut |name| {
                refs_symbolic |= self.operands[name].shape().is_symbolic();
            });
            if !refs_symbolic {
                assignments.push((target, lower_expr(&raw, &concrete)));
                continue;
            }
            let factors = lower_sym_factors(&raw, &self.operands).map_err(|m| ParseError {
                message: format!("assignment `{target}`: {m}"),
                line,
                col,
            })?;
            let chain = SymChain::new(factors).map_err(|e| ParseError {
                message: format!("assignment `{target}`: {e}"),
                line,
                col,
            })?;
            chains.push((target, chain));
        }

        let symbolic = symbolic_problem.then(|| SymbolicProblem {
            operands: self
                .order
                .iter()
                .map(|n| self.operands[n].clone())
                .collect(),
            chains,
        });
        Ok(Problem {
            operands,
            assignments,
            symbolic,
        })
    }

    fn definition(&mut self) -> Result<(), ParseError> {
        let is_vector = match self.next().expect("peeked definition keyword").tok {
            Tok::Vector => true,
            Tok::Matrix => false,
            _ => unreachable!("caller checked keyword"),
        };
        let (name, line, col) = self.ident()?;
        if self.operands.contains_key(&name) {
            return Err(ParseError {
                message: format!("operand `{name}` defined twice"),
                line,
                col,
            });
        }
        self.expect(&Tok::LParen)?;
        let (rows, rline, rcol) = self.dim()?;
        let cols = if is_vector {
            self.expect(&Tok::RParen)?;
            Dim::Const(1)
        } else {
            self.expect(&Tok::Comma)?;
            let (cols, _, _) = self.dim()?;
            self.expect(&Tok::RParen)?;
            cols
        };
        // Zero sizes are rejected here rather than panicking later:
        // concrete pairs go through `Shape::try_new`, and constant
        // components of symbolic shapes are checked individually.
        match (rows.as_const(), cols.as_const()) {
            (Some(r), Some(c)) => {
                Shape::try_new(r, c).map_err(|e| ParseError {
                    message: format!("operand `{name}`: {e}"),
                    line: rline,
                    col: rcol,
                })?;
            }
            _ => {
                for d in [rows, cols] {
                    if d.as_const() == Some(0) {
                        return Err(ParseError {
                            message: format!(
                                "operand `{name}`: matrix dimensions must be positive"
                            ),
                            line: rline,
                            col: rcol,
                        });
                    }
                }
            }
        }
        let mut operand = SymOperand::new(&name, rows, cols);
        if self.peek().map(|t| &t.tok) == Some(&Tok::LAngle) {
            self.next();
            loop {
                let (pname, pline, pcol) = self.ident()?;
                let property: Property = pname.parse().map_err(|_| ParseError {
                    message: format!("unknown property `{pname}`"),
                    line: pline,
                    col: pcol,
                })?;
                let shape = operand.shape();
                operand = operand.with_property(property).map_err(|_| ParseError {
                    message: format!(
                        "property {property} requires a square matrix, but `{name}` is {shape}"
                    ),
                    line: pline,
                    col: pcol,
                })?;
                match self.peek().map(|t| t.tok.clone()) {
                    Some(Tok::Comma) => {
                        self.next();
                    }
                    Some(Tok::RAngle) => {
                        self.next();
                        break;
                    }
                    _ => return Err(self.error_at("expected `,` or `>` in property list")),
                }
            }
        }
        self.operands.insert(name.clone(), operand);
        self.order.push(name);
        Ok(())
    }

    fn expr(&mut self) -> Result<RawExpr, ParseError> {
        let mut terms = vec![self.term()?];
        while self.peek().map(|t| &t.tok) == Some(&Tok::Plus) {
            self.next();
            terms.push(self.term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("len checked")
        } else {
            RawExpr::Add(terms)
        })
    }

    fn term(&mut self) -> Result<RawExpr, ParseError> {
        let mut factors = vec![self.factor()?];
        while self.peek().map(|t| &t.tok) == Some(&Tok::Star) {
            self.next();
            factors.push(self.factor()?);
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("len checked")
        } else {
            RawExpr::Mul(factors)
        })
    }

    fn factor(&mut self) -> Result<RawExpr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek().map(|t| t.tok.clone()) {
                Some(Tok::Transpose) | Some(Tok::Tick) => {
                    self.next();
                    e = RawExpr::Transpose(Box::new(e));
                }
                Some(Tok::Inverse) => {
                    self.next();
                    e = RawExpr::Inverse(Box::new(e));
                }
                Some(Tok::InverseTranspose) => {
                    self.next();
                    e = RawExpr::InverseTranspose(Box::new(e));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<RawExpr, ParseError> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::LParen) => {
                self.next();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(_)) => {
                let (name, line, col) = self.ident()?;
                if !self.operands.contains_key(&name) {
                    return Err(ParseError {
                        message: format!("operand `{name}` is not defined"),
                        line,
                        col,
                    });
                }
                Ok(RawExpr::Ref(name))
            }
            _ => Err(self.error_at("expected an operand or `(`")),
        }
    }
}

/// Visits every operand reference in a raw expression.
fn collect_refs(raw: &RawExpr, visit: &mut impl FnMut(&str)) {
    match raw {
        RawExpr::Ref(name) => visit(name),
        RawExpr::Mul(es) | RawExpr::Add(es) => {
            for e in es {
                collect_refs(e, visit);
            }
        }
        RawExpr::Transpose(e) | RawExpr::Inverse(e) | RawExpr::InverseTranspose(e) => {
            collect_refs(e, visit)
        }
    }
}

/// Lowers a raw expression over concrete operands, applying the same
/// constructors (and hence the same simplifications) the parser used to
/// apply directly.
fn lower_expr(raw: &RawExpr, operands: &HashMap<String, Operand>) -> Expr {
    match raw {
        RawExpr::Ref(name) => operands[name].expr(),
        RawExpr::Mul(fs) => Expr::times(fs.iter().map(|f| lower_expr(f, operands))),
        RawExpr::Add(ts) => Expr::plus(ts.iter().map(|t| lower_expr(t, operands))),
        RawExpr::Transpose(e) => Expr::transpose(lower_expr(e, operands)),
        RawExpr::Inverse(e) => Expr::inverse(lower_expr(e, operands)),
        RawExpr::InverseTranspose(e) => Expr::inverse_transpose(lower_expr(e, operands)),
    }
}

/// Lowers a raw expression to symbolic chain factors, normalizing unary
/// operators down to the factors (`(A·B)ᵀ → Bᵀ·Aᵀ`, `(A·B)⁻¹ →
/// B⁻¹·A⁻¹`, …). Sums have no chain form and are rejected.
fn lower_sym_factors(
    raw: &RawExpr,
    operands: &HashMap<String, SymOperand>,
) -> Result<Vec<SymFactor>, String> {
    match raw {
        RawExpr::Ref(name) => Ok(vec![SymFactor::plain(operands[name].clone())]),
        RawExpr::Mul(fs) => {
            let mut out = Vec::new();
            for f in fs {
                out.extend(lower_sym_factors(f, operands)?);
            }
            Ok(out)
        }
        RawExpr::Add(_) => {
            Err("sums are not supported with symbolic dimensions (chains are products)".into())
        }
        RawExpr::Transpose(e) => {
            let mut fs = lower_sym_factors(e, operands)?;
            fs.reverse();
            Ok(fs
                .into_iter()
                .map(|f| {
                    let op = f.op().then_transpose();
                    SymFactor::new(f.operand().clone(), op)
                })
                .collect())
        }
        RawExpr::Inverse(e) => {
            let mut fs = lower_sym_factors(e, operands)?;
            fs.reverse();
            Ok(fs
                .into_iter()
                .map(|f| {
                    let op = f.op().then_inverse();
                    SymFactor::new(f.operand().clone(), op)
                })
                .collect())
        }
        RawExpr::InverseTranspose(e) => {
            // e⁻ᵀ = (e⁻¹)ᵀ: two reversals cancel.
            Ok(lower_sym_factors(e, operands)?
                .into_iter()
                .map(|f| {
                    let op = f.op().then_inverse().then_transpose();
                    SymFactor::new(f.operand().clone(), op)
                })
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::{Chain, DimBindings};

    const TABLE2: &str = "\
Matrix A (2000, 2000) <SPD>
Matrix B (2000, 200)
Matrix C (200, 200) <LowerTriangular>
X := A^-1 * B * C^T
";

    #[test]
    fn parses_paper_table2_problem() {
        let p = parse(TABLE2).unwrap();
        assert!(!p.is_symbolic());
        assert_eq!(p.operands.len(), 3);
        assert_eq!(p.assignments.len(), 1);
        let (target, expr) = &p.assignments[0];
        assert_eq!(target, "X");
        assert_eq!(expr.to_string(), "A^-1 B C^T");
        let chain = Chain::from_expr(expr).unwrap();
        assert_eq!(chain.len(), 3);
        assert!(p
            .operand("A")
            .unwrap()
            .properties()
            .contains(Property::SymmetricPositiveDefinite));
    }

    #[test]
    fn vector_definitions() {
        let p = parse("Vector v (100)\nMatrix A (50, 100)\ny := A * v").unwrap();
        assert_eq!(p.operand("v").unwrap().shape(), Shape::col_vector(100));
        let chain = Chain::from_expr(&p.assignments[0].1).unwrap();
        assert_eq!(chain.shape(), Shape::col_vector(50));
    }

    #[test]
    fn tick_transpose_and_parens() {
        let p = parse("Matrix A (10, 20)\nMatrix B (10, 20)\nX := (A * B')'").unwrap();
        let expr = &p.assignments[0].1;
        // (A·Bᵀ)ᵀ — normalization happens at Chain construction.
        let chain = Chain::from_expr(expr).unwrap();
        assert_eq!(chain.to_string(), "B A^T");
    }

    #[test]
    fn sums_are_parsed() {
        let p = parse("Matrix A (5, 5)\nMatrix B (5, 5)\nX := A + B * B").unwrap();
        let expr = &p.assignments[0].1;
        assert_eq!(expr.to_string(), "A + B B");
    }

    #[test]
    fn multiple_assignments() {
        let p = parse("Matrix A (5, 5)\nMatrix B (5, 5)\nX := A * B\nY := B * A").unwrap();
        assert_eq!(p.assignments.len(), 2);
    }

    #[test]
    fn error_unknown_operand() {
        let err = parse("Matrix A (5, 5)\nX := A * Q").unwrap_err();
        assert!(err.message.contains("`Q` is not defined"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_duplicate_definition() {
        let err = parse("Matrix A (5, 5)\nMatrix A (6, 6)\nX := A * A").unwrap_err();
        assert!(err.message.contains("defined twice"));
    }

    #[test]
    fn error_unknown_property() {
        let err = parse("Matrix A (5, 5) <Sparse>\nX := A * A").unwrap_err();
        assert!(err.message.contains("unknown property `Sparse`"));
    }

    #[test]
    fn error_square_property_on_rectangular() {
        let err = parse("Matrix A (5, 6) <Symmetric>\nX := A * A").unwrap_err();
        assert!(err.message.contains("requires a square matrix"));
    }

    #[test]
    fn error_missing_assignment() {
        let err = parse("Matrix A (5, 5)").unwrap_err();
        assert!(err.message.contains("no assignment"));
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("Matrix A (5, 5)\nX := * A").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 0);
    }

    #[test]
    fn inverse_of_parenthesized_product() {
        let p = parse("Matrix A (5, 5)\nMatrix B (5, 5)\nX := (A * B)^-1").unwrap();
        let chain = Chain::from_expr(&p.assignments[0].1).unwrap();
        assert_eq!(chain.to_string(), "B^-1 A^-1");
    }

    #[test]
    fn error_zero_dimension_is_a_parse_error() {
        let err = parse("Matrix A (0, 5)\nX := A * A").unwrap_err();
        assert!(err.message.contains("must be positive"), "{err}");
        assert_eq!(err.line, 1);
        let err = parse("Matrix A (n, 0)\nX := A * A").unwrap_err();
        assert!(err.message.contains("must be positive"), "{err}");
    }

    #[test]
    fn symbolic_dimensions_lower_to_sym_chains() {
        let p = parse(
            "Matrix A (n, n) <SPD>\nMatrix B (n, m)\nMatrix C (m, m) <LowerTriangular>\n\
             X := A^-1 * B * C^T\n",
        )
        .unwrap();
        assert!(p.is_symbolic());
        assert!(p.operands.is_empty() && p.assignments.is_empty());
        let sym = p.symbolic.as_ref().unwrap();
        assert_eq!(sym.operands.len(), 3);
        let (target, chain) = &sym.chains[0];
        assert_eq!(target, "X");
        assert_eq!(chain.to_string(), "A^-1 B C^T");
        assert_eq!(chain.vars().len(), 2);
        // Binding reproduces the concrete Table 2 chain.
        let bound = chain
            .bind(&DimBindings::new().with("n", 2000).with("m", 200))
            .unwrap();
        assert_eq!(bound.sizes(), vec![2000, 2000, 200, 200]);
    }

    #[test]
    fn mixed_problem_keeps_concrete_assignments_concrete() {
        // One symbolic definition must not poison assignments that only
        // reference concrete operands — sums included.
        let p = parse(
            "Matrix A (n, n)\nMatrix D (5, 5)\nMatrix E (5, 5)\n\
             X := A * A\nY := D + E\nZ := D * E\n",
        )
        .unwrap();
        assert!(p.is_symbolic());
        // Concrete side: D, E and the Y/Z assignments.
        assert_eq!(p.operands.len(), 2);
        assert!(p.operand("D").is_some() && p.operand("E").is_some());
        let targets: Vec<&str> = p.assignments.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(targets, vec!["Y", "Z"]);
        assert_eq!(p.assignments[0].1.to_string(), "D + E");
        // Symbolic side: all definitions plus the X chain.
        let sym = p.symbolic.as_ref().unwrap();
        assert_eq!(sym.operands.len(), 3);
        assert_eq!(sym.chains.len(), 1);
        assert_eq!(sym.chains[0].0, "X");
    }

    #[test]
    fn symbolic_vector_and_tick() {
        let p = parse("Matrix A (m, n)\nVector v (n)\ny := (v' * A')'").unwrap();
        let sym = p.symbolic.as_ref().unwrap();
        let (_, chain) = &sym.chains[0];
        // (vᵀ Aᵀ)ᵀ = A v.
        assert_eq!(chain.to_string(), "A v");
    }

    #[test]
    fn symbolic_inverse_of_product_distributes() {
        let p = parse("Matrix A (n, n)\nMatrix B (n, n)\nX := (A * B)^-1").unwrap();
        let sym = p.symbolic.as_ref().unwrap();
        assert_eq!(sym.chains[0].1.to_string(), "B^-1 A^-1");
    }

    #[test]
    fn symbolic_sum_is_rejected() {
        let err = parse("Matrix A (n, n)\nMatrix B (n, n)\nX := A + B").unwrap_err();
        assert!(err.message.contains("sums are not supported"), "{err}");
    }

    #[test]
    fn symbolic_structural_mismatch_is_reported() {
        let err = parse("Matrix A (n, m)\nMatrix B (n, m)\nX := A * B").unwrap_err();
        assert!(
            err.message.contains("structural dimension mismatch"),
            "{err}"
        );
    }

    #[test]
    fn symbolic_square_property_needs_structural_squareness() {
        let err = parse("Matrix A (n, m) <Symmetric>\nX := A").unwrap_err();
        assert!(err.message.contains("requires a square matrix"), "{err}");
    }
}
