//! Recursive-descent parser and lowering for the input language.
//!
//! Grammar (paper Fig. 1–2, with explicit `*` for products and a
//! Matlab-style `'` transpose shorthand):
//!
//! ```text
//! problem     → definition+ assignment+
//! definition  → ("Matrix" | "Vector") name "(" int ("," int)? ")" properties?
//! properties  → "<" name ("," name)* ">"
//! assignment  → name ":=" expr
//! expr        → term ("+" term)*
//! term        → factor ("*" factor)*
//! factor      → primary ("^T" | "^-1" | "^-T" | "'")*
//! primary     → name | "(" expr ")"
//! ```

use crate::lexer::{lex, LexError, Tok, Token};
use gmc_expr::{Expr, Operand, Property, Shape};
use std::collections::HashMap;
use std::fmt;

/// A parsed problem: operand definitions plus assignments.
#[derive(Clone, Debug)]
pub struct Problem {
    /// Defined operands, in definition order.
    pub operands: Vec<Operand>,
    /// `(target name, right-hand side)` pairs, in order.
    pub assignments: Vec<(String, Expr)>,
}

impl Problem {
    /// Looks up a defined operand by name.
    pub fn operand(&self, name: &str) -> Option<&Operand> {
        self.operands.iter().find(|o| o.name() == name)
    }
}

/// A parse (or lowering) error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based line (0 for end-of-input).
    pub line: usize,
    /// 1-based column (0 for end-of-input).
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "end of input: {}", self.message)
        } else {
            write!(f, "{}:{}: {}", self.line, self.col, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses a complete problem description.
///
/// # Errors
///
/// Returns a [`ParseError`] with the source position of the first
/// offending token; lowering errors (unknown operand, duplicate
/// definition, unknown property, property on a non-square matrix) are
/// reported the same way.
pub fn parse(input: &str) -> Result<Problem, ParseError> {
    let tokens = lex(input)?;
    Parser {
        tokens,
        pos: 0,
        operands: HashMap::new(),
        order: Vec::new(),
    }
    .problem()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    operands: HashMap<String, Operand>,
    order: Vec<String>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_at(&self, message: impl Into<String>) -> ParseError {
        match self.peek() {
            Some(t) => ParseError {
                message: message.into(),
                line: t.line,
                col: t.col,
            },
            None => ParseError {
                message: message.into(),
                line: 0,
                col: 0,
            },
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<Token, ParseError> {
        match self.peek() {
            Some(t) if t.tok == *want => Ok(self.next().expect("peeked")),
            Some(t) => Err(ParseError {
                message: format!("expected {want}, found {}", t.tok),
                line: t.line,
                col: t.col,
            }),
            None => Err(self.error_at(format!("expected {want}"))),
        }
    }

    fn ident(&mut self) -> Result<(String, usize, usize), ParseError> {
        match self.peek().cloned() {
            Some(Token {
                tok: Tok::Ident(name),
                line,
                col,
            }) => {
                self.next();
                Ok((name, line, col))
            }
            Some(t) => Err(ParseError {
                message: format!("expected identifier, found {}", t.tok),
                line: t.line,
                col: t.col,
            }),
            None => Err(self.error_at("expected identifier")),
        }
    }

    fn int(&mut self) -> Result<usize, ParseError> {
        match self.peek().cloned() {
            Some(Token {
                tok: Tok::Int(v), ..
            }) => {
                self.next();
                Ok(v)
            }
            _ => Err(self.error_at("expected integer")),
        }
    }

    fn problem(mut self) -> Result<Problem, ParseError> {
        let mut assignments = Vec::new();
        while self.peek().is_some() {
            match self.peek().map(|t| t.tok.clone()) {
                Some(Tok::Matrix) | Some(Tok::Vector) => self.definition()?,
                Some(Tok::Ident(_)) => {
                    let (target, expr) = self.assignment()?;
                    assignments.push((target, expr));
                }
                _ => return Err(self.error_at("expected a definition or an assignment")),
            }
        }
        if assignments.is_empty() {
            return Err(ParseError {
                message: "problem contains no assignment".into(),
                line: 0,
                col: 0,
            });
        }
        let operands = self
            .order
            .iter()
            .map(|n| self.operands[n].clone())
            .collect();
        Ok(Problem {
            operands,
            assignments,
        })
    }

    fn definition(&mut self) -> Result<(), ParseError> {
        let is_vector = match self.next().expect("peeked definition keyword").tok {
            Tok::Vector => true,
            Tok::Matrix => false,
            _ => unreachable!("caller checked keyword"),
        };
        let (name, line, col) = self.ident()?;
        if self.operands.contains_key(&name) {
            return Err(ParseError {
                message: format!("operand `{name}` defined twice"),
                line,
                col,
            });
        }
        self.expect(&Tok::LParen)?;
        let rows = self.int()?;
        let shape = if is_vector {
            self.expect(&Tok::RParen)?;
            Shape::col_vector(rows)
        } else {
            self.expect(&Tok::Comma)?;
            let cols = self.int()?;
            self.expect(&Tok::RParen)?;
            Shape::new(rows, cols)
        };
        let mut operand = Operand::with_shape(&name, shape);
        if self.peek().map(|t| &t.tok) == Some(&Tok::LAngle) {
            self.next();
            loop {
                let (pname, pline, pcol) = self.ident()?;
                let property: Property = pname.parse().map_err(|_| ParseError {
                    message: format!("unknown property `{pname}`"),
                    line: pline,
                    col: pcol,
                })?;
                if property.requires_square() && !shape.is_square() {
                    return Err(ParseError {
                        message: format!(
                            "property {property} requires a square matrix, but `{name}` is {shape}"
                        ),
                        line: pline,
                        col: pcol,
                    });
                }
                operand = operand.with_property(property);
                match self.peek().map(|t| t.tok.clone()) {
                    Some(Tok::Comma) => {
                        self.next();
                    }
                    Some(Tok::RAngle) => {
                        self.next();
                        break;
                    }
                    _ => return Err(self.error_at("expected `,` or `>` in property list")),
                }
            }
        }
        self.operands.insert(name.clone(), operand);
        self.order.push(name);
        Ok(())
    }

    fn assignment(&mut self) -> Result<(String, Expr), ParseError> {
        let (target, _, _) = self.ident()?;
        self.expect(&Tok::Assign)?;
        let expr = self.expr()?;
        Ok((target, expr))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut terms = vec![self.term()?];
        while self.peek().map(|t| &t.tok) == Some(&Tok::Plus) {
            self.next();
            terms.push(self.term()?);
        }
        Ok(Expr::plus(terms))
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut factors = vec![self.factor()?];
        while self.peek().map(|t| &t.tok) == Some(&Tok::Star) {
            self.next();
            factors.push(self.factor()?);
        }
        Ok(Expr::times(factors))
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek().map(|t| t.tok.clone()) {
                Some(Tok::Transpose) | Some(Tok::Tick) => {
                    self.next();
                    e = Expr::transpose(e);
                }
                Some(Tok::Inverse) => {
                    self.next();
                    e = Expr::inverse(e);
                }
                Some(Tok::InverseTranspose) => {
                    self.next();
                    e = Expr::inverse_transpose(e);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().map(|t| t.tok.clone()) {
            Some(Tok::LParen) => {
                self.next();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(_)) => {
                let (name, line, col) = self.ident()?;
                match self.operands.get(&name) {
                    Some(op) => Ok(op.expr()),
                    None => Err(ParseError {
                        message: format!("operand `{name}` is not defined"),
                        line,
                        col,
                    }),
                }
            }
            _ => Err(self.error_at("expected an operand or `(`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::Chain;

    const TABLE2: &str = "\
Matrix A (2000, 2000) <SPD>
Matrix B (2000, 200)
Matrix C (200, 200) <LowerTriangular>
X := A^-1 * B * C^T
";

    #[test]
    fn parses_paper_table2_problem() {
        let p = parse(TABLE2).unwrap();
        assert_eq!(p.operands.len(), 3);
        assert_eq!(p.assignments.len(), 1);
        let (target, expr) = &p.assignments[0];
        assert_eq!(target, "X");
        assert_eq!(expr.to_string(), "A^-1 B C^T");
        let chain = Chain::from_expr(expr).unwrap();
        assert_eq!(chain.len(), 3);
        assert!(p
            .operand("A")
            .unwrap()
            .properties()
            .contains(Property::SymmetricPositiveDefinite));
    }

    #[test]
    fn vector_definitions() {
        let p = parse("Vector v (100)\nMatrix A (50, 100)\ny := A * v").unwrap();
        assert_eq!(p.operand("v").unwrap().shape(), Shape::col_vector(100));
        let chain = Chain::from_expr(&p.assignments[0].1).unwrap();
        assert_eq!(chain.shape(), Shape::col_vector(50));
    }

    #[test]
    fn tick_transpose_and_parens() {
        let p = parse("Matrix A (10, 20)\nMatrix B (10, 20)\nX := (A * B')'").unwrap();
        let expr = &p.assignments[0].1;
        // (A·Bᵀ)ᵀ — normalization happens at Chain construction.
        let chain = Chain::from_expr(expr).unwrap();
        assert_eq!(chain.to_string(), "B A^T");
    }

    #[test]
    fn sums_are_parsed() {
        let p = parse("Matrix A (5, 5)\nMatrix B (5, 5)\nX := A + B * B").unwrap();
        let expr = &p.assignments[0].1;
        assert_eq!(expr.to_string(), "A + B B");
    }

    #[test]
    fn multiple_assignments() {
        let p = parse("Matrix A (5, 5)\nMatrix B (5, 5)\nX := A * B\nY := B * A").unwrap();
        assert_eq!(p.assignments.len(), 2);
    }

    #[test]
    fn error_unknown_operand() {
        let err = parse("Matrix A (5, 5)\nX := A * Q").unwrap_err();
        assert!(err.message.contains("`Q` is not defined"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn error_duplicate_definition() {
        let err = parse("Matrix A (5, 5)\nMatrix A (6, 6)\nX := A * A").unwrap_err();
        assert!(err.message.contains("defined twice"));
    }

    #[test]
    fn error_unknown_property() {
        let err = parse("Matrix A (5, 5) <Sparse>\nX := A * A").unwrap_err();
        assert!(err.message.contains("unknown property `Sparse`"));
    }

    #[test]
    fn error_square_property_on_rectangular() {
        let err = parse("Matrix A (5, 6) <Symmetric>\nX := A * A").unwrap_err();
        assert!(err.message.contains("requires a square matrix"));
    }

    #[test]
    fn error_missing_assignment() {
        let err = parse("Matrix A (5, 5)").unwrap_err();
        assert!(err.message.contains("no assignment"));
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("Matrix A (5, 5)\nX := * A").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.col > 0);
    }

    #[test]
    fn inverse_of_parenthesized_product() {
        let p = parse("Matrix A (5, 5)\nMatrix B (5, 5)\nX := (A * B)^-1").unwrap();
        let chain = Chain::from_expr(&p.assignments[0].1).unwrap();
        assert_eq!(chain.to_string(), "B^-1 A^-1");
    }
}
