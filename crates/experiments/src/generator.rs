//! Random test-problem generation following the paper's protocol
//! (Sec. 4): chains of length uniform in `[3, 10]`, matrix sizes uniform
//! in `{50, 100, …, 2000}`, a mix of square and rectangular matrices and
//! vectors, random transposition/inversion, and at most one of the five
//! properties {diagonal, lower/upper triangular, symmetric, SPD} per
//! operand.

use gmc_expr::{Chain, Factor, Operand, Property, Shape, UnaryOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the random chain generator.
///
/// `Default` reproduces the paper's parameters, except that
/// `size_max` defaults to the paper's 2000 — measured experiment
/// drivers pass a smaller value (see EXPERIMENTS.md).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Inclusive chain length range (paper: 3..=10).
    pub len_min: usize,
    /// Inclusive upper bound of the chain length.
    pub len_max: usize,
    /// Smallest matrix dimension (paper: 50).
    pub size_min: usize,
    /// Largest matrix dimension (paper: 2000).
    pub size_max: usize,
    /// Dimension step (paper: 50).
    pub size_step: usize,
    /// Probability that a factor is transposed.
    pub p_transpose: f64,
    /// Probability that a (square, non-vector) factor is inverted.
    pub p_inverse: f64,
    /// Probability that a square operand gets one of the five
    /// properties.
    pub p_property: f64,
    /// Probability that a dimension boundary is 1 (producing vectors).
    pub p_vector: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            len_min: 3,
            len_max: 10,
            size_min: 50,
            size_max: 2000,
            size_step: 50,
            p_transpose: 0.25,
            p_inverse: 0.2,
            p_property: 0.6,
            p_vector: 0.1,
        }
    }
}

impl GeneratorConfig {
    /// The paper's configuration with a reduced size range, suitable for
    /// *measured* experiments on the pure-Rust substrate.
    pub fn measured_scale() -> Self {
        GeneratorConfig {
            size_max: 300,
            ..GeneratorConfig::default()
        }
    }

    fn random_dim(&self, rng: &mut StdRng) -> usize {
        if rng.gen_bool(self.p_vector) {
            return 1;
        }
        let steps = (self.size_max - self.size_min) / self.size_step;
        self.size_min + rng.gen_range(0..=steps) * self.size_step
    }
}

/// A serializable description of one generated test problem, so that
/// experiment runs are reproducible and figures can be regenerated from
/// a saved problem set.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct ChainSpec {
    /// The factors, in order.
    pub factors: Vec<FactorSpec>,
}

/// One factor of a [`ChainSpec`].
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq, Eq)]
pub struct FactorSpec {
    /// Operand name.
    pub name: String,
    /// Rows of the (un-transposed) operand.
    pub rows: usize,
    /// Columns of the (un-transposed) operand.
    pub cols: usize,
    /// `""`, `"T"`, `"-1"` or `"-T"`.
    pub op: String,
    /// Property names (paper Fig. 2 spelling).
    pub properties: Vec<String>,
}

impl ChainSpec {
    /// Reconstructs the chain.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent (only possible for
    /// hand-edited specs).
    pub fn to_chain(&self) -> Chain {
        let factors: Vec<Factor> = self
            .factors
            .iter()
            .map(|f| {
                let mut operand = Operand::with_shape(&f.name, Shape::new(f.rows, f.cols));
                for p in &f.properties {
                    operand = operand.with_property(p.parse::<Property>().expect("valid property"));
                }
                let op = match f.op.as_str() {
                    "" => UnaryOp::None,
                    "T" => UnaryOp::Transpose,
                    "-1" => UnaryOp::Inverse,
                    "-T" => UnaryOp::InverseTranspose,
                    other => panic!("unknown unary op {other:?}"),
                };
                Factor::new(operand, op)
            })
            .collect();
        Chain::new(factors).expect("spec describes a well-formed chain")
    }

    /// Creates a spec from a chain.
    pub fn from_chain(chain: &Chain) -> Self {
        ChainSpec {
            factors: chain
                .factors()
                .iter()
                .map(|f| FactorSpec {
                    name: f.operand().name().to_owned(),
                    rows: f.operand().shape().rows(),
                    cols: f.operand().shape().cols(),
                    op: match f.op() {
                        UnaryOp::None => "",
                        UnaryOp::Transpose => "T",
                        UnaryOp::Inverse => "-1",
                        UnaryOp::InverseTranspose => "-T",
                    }
                    .to_owned(),
                    properties: f
                        .operand()
                        .properties()
                        .iter()
                        .map(|p| p.name().to_owned())
                        .collect(),
                })
                .collect(),
        }
    }
}

/// The five properties the paper's generator draws from.
const PAPER_PROPERTIES: [Property; 5] = [
    Property::Diagonal,
    Property::LowerTriangular,
    Property::UpperTriangular,
    Property::Symmetric,
    Property::SymmetricPositiveDefinite,
];

/// Generates one random chain (deterministic in `rng`).
pub fn random_chain(config: &GeneratorConfig, rng: &mut StdRng) -> Chain {
    let n = rng.gen_range(config.len_min..=config.len_max);
    // Boundary sizes s[0..=n]; factor i is s[i] × s[i+1] before its own
    // transposition. Consecutive 1s would create scalars — redraw.
    let mut sizes = Vec::with_capacity(n + 1);
    sizes.push(config.random_dim(rng));
    for i in 1..=n {
        let mut s = config.random_dim(rng);
        while s == 1 && sizes[i - 1] == 1 {
            s = config.random_dim(rng);
        }
        sizes.push(s);
    }

    let mut factors = Vec::with_capacity(n);
    for i in 0..n {
        let (rows, cols) = (sizes[i], sizes[i + 1]);
        let square = rows == cols && rows > 1;
        let inverted = square && rng.gen_bool(config.p_inverse);
        let transposed = rng.gen_bool(config.p_transpose);
        // The stored operand shape: if the chain uses Mᵀ at slot
        // (rows × cols), the operand itself is (cols × rows).
        let shape = if transposed {
            Shape::new(cols, rows)
        } else {
            Shape::new(rows, cols)
        };
        let mut operand = Operand::with_shape(format!("M{i}"), shape);
        if shape.is_square() && shape.rows() > 1 && rng.gen_bool(config.p_property) {
            let p = PAPER_PROPERTIES[rng.gen_range(0..PAPER_PROPERTIES.len())];
            operand = operand.with_property(p);
        }
        let op = match (transposed, inverted) {
            (false, false) => UnaryOp::None,
            (true, false) => UnaryOp::Transpose,
            (false, true) => UnaryOp::Inverse,
            (true, true) => UnaryOp::InverseTranspose,
        };
        factors.push(Factor::new(operand, op));
    }
    Chain::new(factors).expect("generator produces well-formed chains")
}

/// Generates the paper's test set: `count` random chains from a seed.
pub fn random_chains(config: &GeneratorConfig, count: usize, seed: u64) -> Vec<Chain> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| random_chain(config, &mut rng)).collect()
}

/// Saves a chain set as JSON so an experiment run can be reproduced
/// exactly (and figures regenerated from the recorded problems).
///
/// # Errors
///
/// Returns an I/O error if the file cannot be written.
pub fn save_chains(path: &std::path::Path, chains: &[Chain]) -> std::io::Result<()> {
    let specs: Vec<ChainSpec> = chains.iter().map(ChainSpec::from_chain).collect();
    let json = serde_json::to_string_pretty(&specs).expect("specs serialize");
    std::fs::write(path, json)
}

/// Loads a chain set saved by [`save_chains`].
///
/// # Errors
///
/// Returns an I/O error if the file cannot be read or an
/// `InvalidData` error if it does not contain a valid chain set.
pub fn load_chains(path: &std::path::Path) -> std::io::Result<Vec<Chain>> {
    let json = std::fs::read_to_string(path)?;
    let specs: Vec<ChainSpec> = serde_json::from_str(&json)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(specs.iter().map(ChainSpec::to_chain).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_are_well_formed_and_in_range() {
        let config = GeneratorConfig::default();
        let chains = random_chains(&config, 50, 1);
        for chain in &chains {
            assert!(chain.len() >= 3 && chain.len() <= 10);
            for f in chain.factors() {
                let s = f.operand().shape();
                assert!(s.rows() <= 2000 && s.cols() <= 2000);
                if f.op().is_inverted() {
                    assert!(s.is_square());
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = GeneratorConfig::default();
        let a = random_chains(&config, 10, 7);
        let b = random_chains(&config, 10, 7);
        assert_eq!(a, b);
        let c = random_chains(&config, 10, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn generator_produces_variety() {
        let config = GeneratorConfig::default();
        let chains = random_chains(&config, 100, 42);
        let any_inverse = chains
            .iter()
            .any(|c| c.factors().iter().any(|f| f.op().is_inverted()));
        let any_transpose = chains
            .iter()
            .any(|c| c.factors().iter().any(|f| f.op().is_transposed()));
        let any_property = chains.iter().any(|c| {
            c.factors()
                .iter()
                .any(|f| !f.operand().properties().is_empty())
        });
        let any_vector = chains
            .iter()
            .any(|c| c.factors().iter().any(|f| f.operand().shape().is_vector()));
        assert!(any_inverse && any_transpose && any_property && any_vector);
    }

    #[test]
    fn spec_round_trip() {
        let config = GeneratorConfig::measured_scale();
        let chains = random_chains(&config, 20, 3);
        for chain in &chains {
            let spec = ChainSpec::from_chain(chain);
            let back = spec.to_chain();
            assert_eq!(&back, chain);
            // JSON round trip too.
            let json = serde_json::to_string(&spec).unwrap();
            let parsed: ChainSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(parsed, spec);
        }
    }

    #[test]
    fn save_load_round_trip() {
        let config = GeneratorConfig::measured_scale();
        let chains = random_chains(&config, 10, 13);
        let path = std::env::temp_dir().join("gmc_chains_test.json");
        save_chains(&path, &chains).unwrap();
        let back = load_chains(&path).unwrap();
        assert_eq!(back, chains);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn no_scalar_operands() {
        let config = GeneratorConfig {
            p_vector: 0.8,
            ..GeneratorConfig::measured_scale()
        };
        let chains = random_chains(&config, 50, 9);
        for chain in &chains {
            for f in chain.factors() {
                assert!(!f.operand().shape().is_scalar());
            }
        }
    }
}
