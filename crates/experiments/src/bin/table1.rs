//! Reproduces paper Table 1: example kernel patterns with their
//! constraints and costs, straight from the kernel registry.
//!
//! Pass `--full` to print the complete registry (all 90+ kernels) as a
//! Markdown table instead of the paper's five example rows.

use gmc_experiments::args;
use gmc_kernels::KernelRegistry;

fn main() {
    let registry = KernelRegistry::blas_lapack();
    if args::flag("full") {
        println!("== full kernel registry ({} kernels) ==\n", registry.len());
        print!("{}", registry.describe());
        return;
    }
    println!("== Table 1: examples of patterns for BLAS kernels ==\n");
    println!(
        "{:<14} {:<22} {:<28} cost",
        "Name", "Pattern", "Constraints"
    );
    // The rows the paper shows, by kernel name.
    let rows = ["GEMM_NN", "TRMM_LLN", "SYMM_LN", "TRSM_LLN", "SYRK_T"];
    for name in rows {
        let k = registry
            .kernels()
            .iter()
            .find(|k| k.name() == name)
            .expect("kernel present in full registry");
        let constraints = if k.constraints().is_empty() {
            "-".to_owned()
        } else {
            k.constraints()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let cost = match k.family() {
            gmc_kernels::KernelFamily::Gemm => "2mnk",
            gmc_kernels::KernelFamily::Trmm
            | gmc_kernels::KernelFamily::Symm
            | gmc_kernels::KernelFamily::Trsm => "m^2 n",
            gmc_kernels::KernelFamily::Syrk => "m^2 k",
            _ => "?",
        };
        println!(
            "{:<14} {:<22} {:<28} {}",
            k.name(),
            k.pattern().to_string(),
            constraints,
            cost
        );
    }
    println!(
        "\nfull registry: {} kernels across {} families",
        registry.len(),
        {
            let mut fams: Vec<_> = registry.kernels().iter().map(|k| k.family()).collect();
            fams.sort_unstable();
            fams.dedup();
            fams.len()
        }
    );
}
