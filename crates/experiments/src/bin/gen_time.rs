//! Reproduces the Sec. 4 generation-time experiment: the GMC algorithm
//! averaged 0.03 s per chain (max < 0.07 s) in the paper's Python
//! implementation, independent of matrix sizes.

use gmc_experiments::args;
use gmc_experiments::gentime::{paper_generation_time, size_independence};

fn main() {
    let seed: u64 = args::opt_or("seed", 2018);
    println!("== Sec. 4: GMC generation time (100 random chains) ==\n");
    let stats = paper_generation_time(seed);
    println!(
        "chains: {}   mean: {:.1} us   min: {:.1} us   max: {:.1} us",
        stats.count,
        stats.mean * 1e6,
        stats.min * 1e6,
        stats.max * 1e6
    );
    println!("(paper, Python+MatchPy: mean 0.03 s, max < 0.07 s)\n");

    let (small, large) = size_independence(seed);
    println!("size independence (mean per chain):");
    println!("  sizes <= 100:      {:.1} us", small.mean * 1e6);
    println!("  sizes 1950..2000:  {:.1} us", large.mean * 1e6);
    println!("(generation time does not depend on matrix sizes)");
}
