//! Diagnostic tool: finds the test problems where the GMC-generated
//! program is furthest from the best implementation (wall clock) and
//! prints both programs with per-instruction timings.

use gmc_codegen::{Emitter, PseudoEmitter};
use gmc_experiments::generator::{random_chains, GeneratorConfig};
use gmc_experiments::harness::{compile_all, evaluate_chain, EvalMode};
use gmc_experiments::{args, report};
use gmc_kernels::KernelRegistry;
use gmc_runtime::{execute_op, Env};
use std::time::Instant;

fn main() {
    let chains_n: usize = args::opt_or("chains", 30);
    let seed: u64 = args::opt_or("seed", 2018);
    let reps: usize = args::opt_or("reps", 3);
    let mut config = GeneratorConfig::measured_scale();
    config.size_max = args::opt_or("size-max", config.size_max);
    let top: usize = args::opt_or("top", 3);

    let registry = KernelRegistry::blas_lapack();
    let chains = random_chains(&config, chains_n, seed);
    let mut scored = Vec::new();
    for chain in &chains {
        let m = evaluate_chain(
            chain,
            &registry,
            EvalMode::Measured {
                reps,
                seed,
                validate: false,
            },
        )
        .expect("measured run");
        scored.push((m.gmc() / m.best(), chain.clone(), m));
    }
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));

    for (ratio, chain, m) in scored.iter().take(top) {
        println!("==============================================");
        println!("chain: {chain}   GMC/best = {ratio:.2}");
        for (label, cost) in &m.costs {
            println!("  {label:<8} {}", report::fmt_cost(*cost));
        }
        let programs = compile_all(chain, &registry).expect("compiles");
        let best_label = m
            .costs
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0
            .clone();
        for (label, program) in &programs {
            if label != "GMC" && *label != best_label {
                continue;
            }
            println!("--- {label} program (flops {:.3e}):", program.flops());
            let env = Env::random_for_chain(chain, seed);
            let mut env2 = env.clone();
            for instr in program.instructions() {
                let start = Instant::now();
                let v = execute_op(instr.op(), &env2).expect("op runs");
                let dt = start.elapsed().as_secs_f64();
                env2.bind(instr.dest().name(), v);
                println!(
                    "    {:<9} {}",
                    report::fmt_cost(dt),
                    PseudoEmitter.emit(&gmc_codegen::Program::new(vec![instr.clone()]))
                );
            }
        }
    }
}
