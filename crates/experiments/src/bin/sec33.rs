//! Reproduces the Sec. 3.3 worked example: for the chain `ABCDE` with
//! sizes 130, 700, 383, 1340, 193, 900, the FLOP-optimal
//! parenthesization `(((AB)C)D)E` (3.16e8 FLOPs) differs from the
//! time-optimal one `((AB)(CD))E` (3.32e8 FLOPs, ~10% faster in the
//! paper's measurements).

use gmc::mcp::matrix_chain_order;
use gmc::{FlopCount, GmcOptimizer, TimeModel};
use gmc_expr::{Chain, Factor, Operand};
use gmc_kernels::KernelRegistry;

fn main() {
    let sizes = [130usize, 700, 383, 1340, 193, 900];
    println!("== Sec. 3.3: FLOPs vs. execution time on ABCDE ==");
    println!("sizes: {sizes:?}\n");

    // Classic MCP on the size array.
    let classic = matrix_chain_order(&sizes);
    println!(
        "classic MCP optimum: {} = {:.3e} flops (paper: (((AB)C)D)E = 3.16e8)",
        classic.parenthesization(&["A", "B", "C", "D", "E"]),
        classic.flops()
    );

    // The specific alternative the paper measures.
    // ((AB)(CD))E: 2*130*383*700 + 2*383*193*1340 + 2*130*193*383 +
    // 2*130*900*193.
    let alt = 2.0 * 130.0 * 383.0 * 700.0
        + 2.0 * 383.0 * 193.0 * 1340.0
        + 2.0 * 130.0 * 193.0 * 383.0
        + 2.0 * 130.0 * 900.0 * 193.0;
    println!("((AB)(CD))E:         {alt:.3e} flops (paper: 3.32e8)\n");

    // GMC with the FLOP metric vs. the time model.
    let ops: Vec<Operand> = (0..5)
        .map(|i| {
            Operand::matrix(
                format!("{}", (b'A' + i as u8) as char),
                sizes[i],
                sizes[i + 1],
            )
        })
        .collect();
    let chain = Chain::new(ops.into_iter().map(Factor::plain).collect()).unwrap();
    let registry = KernelRegistry::blas_lapack();

    let by_flops = GmcOptimizer::new(&registry, FlopCount)
        .solve(&chain)
        .unwrap();
    println!(
        "GMC (flops metric): {}  -> {:.3e} flops",
        by_flops.parenthesization(),
        by_flops.flops()
    );

    let model = TimeModel::default();
    let by_time = GmcOptimizer::new(&registry, model).solve(&chain).unwrap();
    println!(
        "GMC (time model):   {}  -> {:.3e} flops, {:.3} ms (model)",
        by_time.parenthesization(),
        by_time.flops(),
        by_time.cost() * 1e3
    );
    println!(
        "\nThe time-optimal solution may legally spend MORE flops than the\n\
         flop-optimal one; with the paper's measured kernels the 3.32e8-flop\n\
         parenthesization ran ~10% faster (6.8 ms vs 7.6 ms)."
    );
}
