//! Reproduces paper Fig. 8: average speedup of the GMC-generated code
//! over each baseline, on 100 random chains.
//!
//! ```text
//! fig8 [--chains 100] [--seed 2018] [--size-max 300] [--reps 3]
//!      [--flops | --model]      # cost analytically instead of executing
//!      [--paper-sizes]          # size range 50..2000 (use with --flops)
//! ```

use gmc::TimeModel;
use gmc_experiments::generator::{load_chains, random_chains, save_chains, GeneratorConfig};
use gmc_experiments::harness::{evaluate_chain, fig8_speedups, EvalMode};
use gmc_experiments::{args, report};
use gmc_kernels::KernelRegistry;

fn main() {
    let chains_n: usize = args::opt_or("chains", 100);
    let seed: u64 = args::opt_or("seed", 2018);
    let reps: usize = args::opt_or("reps", 3);
    let mut config = if args::flag("paper-sizes") {
        GeneratorConfig::default()
    } else {
        GeneratorConfig::measured_scale()
    };
    config.size_max = args::opt_or("size-max", config.size_max);

    let mode = if args::flag("flops") {
        EvalMode::Flops
    } else if args::flag("model") {
        EvalMode::Model(TimeModel::default())
    } else {
        EvalMode::Measured {
            reps,
            seed,
            validate: false,
        }
    };

    eprintln!(
        "fig8: {chains_n} chains, seed {seed}, sizes {}..{} step {}, mode {mode:?}",
        config.size_min, config.size_max, config.size_step
    );

    let registry = KernelRegistry::blas_lapack();
    let chains = match args::opt("chains-file") {
        Some(path) => load_chains(std::path::Path::new(&path)).expect("readable chain set"),
        None => random_chains(&config, chains_n, seed),
    };
    if let Some(path) = args::opt("save-chains") {
        save_chains(std::path::Path::new(&path), &chains).expect("writable chain set");
    }
    let mut results = Vec::with_capacity(chains.len());
    for (i, chain) in chains.iter().enumerate() {
        match evaluate_chain(chain, &registry, mode) {
            Ok(m) => results.push(m),
            Err(e) => eprintln!("chain {i} skipped: {e}"),
        }
        if (i + 1) % 10 == 0 {
            eprintln!("  {}/{} chains done", i + 1, chains_n);
        }
    }

    println!("== Fig. 8: average speedup of GMC over each baseline ==");
    println!("(paper reports speedups between ~6 and ~15, ~9 overall)\n");
    print!("{}", report::fig8_table(&fig8_speedups(&results)));
}
