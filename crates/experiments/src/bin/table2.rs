//! Reproduces paper Table 2: the implementations of `X := A⁻¹ B Cᵀ`
//! (A SPD, C lower triangular) in GMC and every baseline, with FLOP
//! counts and — for the GMC row — the generated Julia code.

use gmc::{FlopCount, GmcOptimizer};
use gmc_baselines::{all_strategies, Strategy};
use gmc_codegen::{Emitter, JuliaEmitter, PseudoEmitter};
use gmc_experiments::args;
use gmc_expr::{Chain, Operand, Property};
use gmc_kernels::KernelRegistry;

fn main() {
    let n: usize = args::opt_or("n", 2000);
    let m: usize = args::opt_or("m", 200);
    let a = Operand::square("A", n).with_property(Property::SymmetricPositiveDefinite);
    let b = Operand::matrix("B", n, m);
    let c = Operand::square("C", m).with_property(Property::LowerTriangular);
    let chain =
        Chain::from_expr(&(a.inverse() * b.expr() * c.transpose())).expect("well-formed chain");

    println!("== Table 2: implementations of A^-1 B C^T ==");
    println!("A: {n}x{n} SPD, B: {n}x{m}, C: {m}x{m} lower triangular\n");

    let registry = KernelRegistry::blas_lapack();
    let gmc = GmcOptimizer::new(&registry, FlopCount)
        .solve(&chain)
        .expect("computable");
    let julia = JuliaEmitter::default();
    println!("GMC        ({:>12.4e} flops)", gmc.flops());
    for line in julia.emit(&gmc.program()).lines() {
        println!("    {line}");
    }
    println!();

    for s in all_strategies() {
        let program = s.compile(&chain);
        println!("{:<10} ({:>12.4e} flops)", s.label(), program.flops());
        for line in PseudoEmitter.emit(&program).lines() {
            println!("    {line}");
        }
        println!();
    }
}
