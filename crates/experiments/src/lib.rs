//! Experiment drivers reproducing every table and figure of the CGO'18
//! GMC paper's evaluation (Sec. 4).
//!
//! * [`generator`] — the random test-problem generator (paper protocol).
//! * [`harness`] — compiles each chain with GMC + the nine baselines and
//!   costs or executes the resulting programs.
//! * [`report`] — text rendering of the Fig. 8 / Fig. 9 data.
//! * [`gentime`] — the generation-time experiment.
//!
//! Runnable binaries (see also EXPERIMENTS.md at the workspace root):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig8` | average speedup of GMC over each baseline |
//! | `fig9` | per-problem execution times, sorted by GMC time |
//! | `table1` | example kernel patterns, constraints and costs |
//! | `table2` | the ten implementations of `A⁻¹ B Cᵀ` |
//! | `sec33` | the FLOPs-vs-time `ABCDE` example |
//! | `gen_time` | GMC generation-time statistics |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod gentime;
pub mod harness;
pub mod report;

/// Tiny command-line flag parsing for the experiment binaries
/// (`--name value` pairs and boolean `--flag`s).
pub mod args {
    /// Returns the value following `--name`, if present.
    pub fn opt(name: &str) -> Option<String> {
        let mut args = std::env::args();
        while let Some(a) = args.next() {
            if a == format!("--{name}") {
                return args.next();
            }
        }
        None
    }

    /// Returns the value following `--name` parsed, or `default`.
    pub fn opt_or<T: std::str::FromStr>(name: &str, default: T) -> T {
        opt(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Whether the boolean flag `--name` is present.
    pub fn flag(name: &str) -> bool {
        std::env::args().any(|a| a == format!("--{name}"))
    }
}
