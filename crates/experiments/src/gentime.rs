//! The generation-time experiment (paper Sec. 4): how long does the GMC
//! algorithm itself take to produce a solution?
//!
//! The paper reports an average of 0.03 s and a maximum below 0.07 s
//! per chain (Python + MatchPy); generation time is independent of the
//! matrix sizes. This Rust implementation is several orders of
//! magnitude faster, but the *shape* — microseconds-scale, constant in
//! matrix size, suitable for interactive use — is what the experiment
//! verifies.

use crate::generator::{random_chains, GeneratorConfig};
use gmc::{FlopCount, GmcOptimizer, GmcWorkspace};
use gmc_expr::Chain;
use gmc_kernels::KernelRegistry;
use std::time::Instant;

/// Summary of generation times over a set of chains.
#[derive(Clone, Debug)]
pub struct GenTimeStats {
    /// Number of chains.
    pub count: usize,
    /// Mean seconds per chain.
    pub mean: f64,
    /// Maximum seconds over all chains.
    pub max: f64,
    /// Minimum seconds over all chains.
    pub min: f64,
}

/// Times `GmcOptimizer::solve_with` on each chain (one run per chain,
/// DP tables amortized across the batch through a shared
/// [`GmcWorkspace`] — the production configuration for bulk solving).
pub fn measure_generation_time(chains: &[Chain], registry: &KernelRegistry) -> GenTimeStats {
    let optimizer = GmcOptimizer::new(registry, FlopCount);
    let mut workspace = GmcWorkspace::new();
    let mut times = Vec::with_capacity(chains.len());
    for chain in chains {
        let start = Instant::now();
        let solution = optimizer
            .solve_with(chain, &mut workspace)
            .expect("full registry computes all chains");
        let elapsed = start.elapsed().as_secs_f64();
        // Keep the solution alive so the optimizer cannot be optimized
        // away.
        std::hint::black_box(&solution);
        times.push(elapsed);
    }
    let count = times.len();
    let mean = times.iter().sum::<f64>() / count.max(1) as f64;
    GenTimeStats {
        count,
        mean,
        max: times.iter().copied().fold(0.0, f64::max),
        min: times.iter().copied().fold(f64::INFINITY, f64::min),
    }
}

/// Runs the paper's protocol: 100 random chains at full paper sizes.
pub fn paper_generation_time(seed: u64) -> GenTimeStats {
    let registry = KernelRegistry::blas_lapack();
    let chains = random_chains(&GeneratorConfig::default(), 100, seed);
    measure_generation_time(&chains, &registry)
}

/// Demonstrates size independence (paper Sec. 4: "the generation time
/// does not depend on matrix sizes"): identical chains at small and
/// paper scale should optimize in comparable time.
pub fn size_independence(seed: u64) -> (GenTimeStats, GenTimeStats) {
    let registry = KernelRegistry::blas_lapack();
    let small = random_chains(
        &GeneratorConfig {
            size_max: 100,
            ..GeneratorConfig::default()
        },
        50,
        seed,
    );
    let large = random_chains(
        &GeneratorConfig {
            size_min: 1950,
            size_max: 2000,
            ..GeneratorConfig::default()
        },
        50,
        seed,
    );
    (
        measure_generation_time(&small, &registry),
        measure_generation_time(&large, &registry),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_interactive_speed() {
        let stats = paper_generation_time(17);
        assert_eq!(stats.count, 100);
        // The paper's bound is 0.07 s in Python; Rust should be far
        // below even a conservative 50 ms per chain.
        assert!(
            stats.max < 0.05,
            "generation took {:.3}s max, too slow",
            stats.max
        );
        assert!(stats.mean > 0.0);
    }

    #[test]
    fn generation_time_size_independent() {
        let (small, large) = size_independence(23);
        // Generation times may fluctuate, but must stay within an order
        // of magnitude across a 20x size difference.
        assert!(large.mean < small.mean * 10.0 + 1e-3);
    }
}
