//! The experiment harness: compile a chain with all ten implementations
//! (GMC + 9 baselines), cost or execute each program, and summarize.

use crate::generator::ChainSpec;
use gmc::{CostMetric, FlopCount, GmcError, GmcOptimizer, TimeModel};
use gmc_baselines::{all_strategies, Strategy};
use gmc_codegen::Program;
use gmc_expr::Chain;
use gmc_kernels::KernelRegistry;
use gmc_runtime::{validate_against_reference, Env, RuntimeError};

/// Label used for the GMC implementation in result rows.
pub const GMC_LABEL: &str = "GMC";

/// Errors from the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// The optimizer failed (registry cannot compute the chain).
    Gmc(GmcError),
    /// Execution or validation failed.
    Runtime(RuntimeError),
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Gmc(e) => write!(f, "optimizer: {e}"),
            HarnessError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<GmcError> for HarnessError {
    fn from(e: GmcError) -> Self {
        HarnessError::Gmc(e)
    }
}

impl From<RuntimeError> for HarnessError {
    fn from(e: RuntimeError) -> Self {
        HarnessError::Runtime(e)
    }
}

/// Compiles the chain with GMC (FLOPs metric, as in the paper's
/// evaluation) and all nine baselines, in the paper's order.
///
/// # Errors
///
/// Returns an error if the optimizer cannot map the chain (impossible
/// with the full registry).
pub fn compile_all(
    chain: &Chain,
    registry: &KernelRegistry,
) -> Result<Vec<(String, Program)>, GmcError> {
    let gmc = GmcOptimizer::new(registry, FlopCount).solve(chain)?;
    let mut out = vec![(GMC_LABEL.to_owned(), gmc.program())];
    for s in all_strategies() {
        out.push((s.label().to_owned(), s.compile(chain)));
    }
    Ok(out)
}

/// How implementations are costed.
#[derive(Clone, Copy, Debug)]
pub enum EvalMode {
    /// Sum of per-kernel FLOPs (paper Table 1 conventions) — exact and
    /// size-independent, usable at full paper scale.
    Flops,
    /// The calibrated execution-time model of `gmc::TimeModel`.
    Model(TimeModel),
    /// Actually execute each program on the substrate and take the
    /// minimum wall-clock time over `reps` runs (paper footnote 7).
    Measured {
        /// Repetitions per program.
        reps: usize,
        /// Seed for the random input matrices.
        seed: u64,
        /// Validate every program against the reference evaluation
        /// before timing.
        validate: bool,
    },
}

/// The per-implementation costs for one test problem.
#[derive(Clone, Debug)]
pub struct ChainMeasurement {
    /// The problem.
    pub spec: ChainSpec,
    /// `(label, cost)` rows, GMC first, baselines in paper order.
    pub costs: Vec<(String, f64)>,
}

impl ChainMeasurement {
    /// The GMC cost.
    pub fn gmc(&self) -> f64 {
        self.costs[0].1
    }

    /// The minimum cost over all implementations.
    pub fn best(&self) -> f64 {
        self.costs
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Evaluates one chain under the given mode.
///
/// # Errors
///
/// Propagates optimizer and runtime errors.
pub fn evaluate_chain(
    chain: &Chain,
    registry: &KernelRegistry,
    mode: EvalMode,
) -> Result<ChainMeasurement, HarnessError> {
    let programs = compile_all(chain, registry)?;
    let mut costs = Vec::with_capacity(programs.len());
    match mode {
        EvalMode::Flops => {
            for (label, program) in &programs {
                costs.push((label.clone(), program.flops()));
            }
        }
        EvalMode::Model(model) => {
            for (label, program) in &programs {
                let t: f64 = program
                    .instructions()
                    .iter()
                    .map(|i| model.op_cost(i.op()))
                    .sum();
                costs.push((label.clone(), t));
            }
        }
        EvalMode::Measured {
            reps,
            seed,
            validate,
        } => {
            let env = Env::random_for_chain(chain, seed);
            let mut best = vec![f64::INFINITY; programs.len()];
            // Round-robin repetitions: every round times each
            // implementation once, so slow phases of the machine hit all
            // implementations instead of whichever ran during them.
            // Immediately before each timed run the same program runs
            // untimed, so a small program is not charged for the cache
            // damage of whichever (possibly much heavier) program ran
            // before it. The minimum over rounds is kept (paper footnote
            // 7 uses minima as well).
            for round in 0..reps.max(1) {
                for (idx, (_, program)) in programs.iter().enumerate() {
                    if round == 0 && validate {
                        validate_against_reference(program, chain, &env, 1e-5)?;
                    }
                    let _ = gmc_runtime::time_program(program, &env)?;
                    let t = gmc_runtime::time_program(program, &env)?;
                    best[idx] = best[idx].min(t);
                }
            }
            for ((label, _), t) in programs.iter().zip(best) {
                costs.push((label.clone(), t));
            }
        }
    }
    Ok(ChainMeasurement {
        spec: ChainSpec::from_chain(chain),
        costs,
    })
}

/// Fig. 8: the average speedup of GMC over each baseline (arithmetic
/// mean over the test problems of `cost_baseline / cost_GMC`).
pub fn fig8_speedups(results: &[ChainMeasurement]) -> Vec<(String, f64)> {
    if results.is_empty() {
        return Vec::new();
    }
    let labels: Vec<String> = results[0]
        .costs
        .iter()
        .skip(1)
        .map(|(l, _)| l.clone())
        .collect();
    labels
        .iter()
        .enumerate()
        .map(|(idx, label)| {
            let mean = results
                .iter()
                .map(|r| r.costs[idx + 1].1 / r.gmc())
                .sum::<f64>()
                / results.len() as f64;
            (label.clone(), mean)
        })
        .collect()
}

/// Statistics the paper reports alongside Fig. 9.
#[derive(Clone, Debug)]
pub struct Fig9Stats {
    /// Fraction of test cases in which GMC is the fastest.
    pub gmc_fastest_fraction: f64,
    /// Largest ratio `cost_GMC / cost_best` (paper: never above 1.66).
    pub worst_gmc_to_best_ratio: f64,
    /// Fraction of cases where some other implementation beats GMC by
    /// more than 10% (paper: 4%).
    pub other_beats_gmc_by_10pct: f64,
    /// Per baseline: fraction of cases where it is more than 10× slower
    /// than GMC (paper: at least 10% for every baseline).
    pub baseline_10x_slower: Vec<(String, f64)>,
}

/// Computes the Fig. 9 summary statistics.
pub fn fig9_stats(results: &[ChainMeasurement]) -> Fig9Stats {
    let n = results.len().max(1) as f64;
    // Baselines frequently emit the *same* program as GMC (left-to-right
    // happens to be optimal; the paper discusses this in Sec. 4), in
    // which case wall-clock noise decides who is "fastest". A 2% tie
    // tolerance keeps identical programs from flipping the statistic.
    let gmc_fastest = results
        .iter()
        .filter(|r| r.gmc() <= r.best() * 1.02)
        .count() as f64;
    let worst_ratio = results
        .iter()
        .map(|r| r.gmc() / r.best())
        .fold(0.0, f64::max);
    let beat10 = results.iter().filter(|r| r.best() < r.gmc() / 1.1).count() as f64;
    let labels: Vec<String> = results
        .first()
        .map(|r| r.costs.iter().skip(1).map(|(l, _)| l.clone()).collect())
        .unwrap_or_default();
    let baseline_10x_slower = labels
        .iter()
        .enumerate()
        .map(|(idx, label)| {
            let count = results
                .iter()
                .filter(|r| r.costs[idx + 1].1 > 10.0 * r.gmc())
                .count() as f64;
            (label.clone(), count / n)
        })
        .collect();
    Fig9Stats {
        gmc_fastest_fraction: gmc_fastest / n,
        worst_gmc_to_best_ratio: worst_ratio,
        other_beats_gmc_by_10pct: beat10 / n,
        baseline_10x_slower,
    }
}

/// Fig. 9 rows: one row per test problem, sorted by the GMC cost, each
/// row holding every implementation's cost.
pub fn fig9_rows(results: &[ChainMeasurement]) -> Vec<&ChainMeasurement> {
    let mut rows: Vec<&ChainMeasurement> = results.iter().collect();
    rows.sort_by(|a, b| a.gmc().total_cmp(&b.gmc()));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{random_chains, GeneratorConfig};

    #[test]
    fn compile_all_produces_ten_programs() {
        let registry = KernelRegistry::blas_lapack();
        let config = GeneratorConfig::measured_scale();
        let chain = &random_chains(&config, 1, 4)[0];
        let programs = compile_all(chain, &registry).unwrap();
        assert_eq!(programs.len(), 10);
        assert_eq!(programs[0].0, GMC_LABEL);
        for (label, p) in &programs {
            assert!(p.validate().is_ok(), "{label} program invalid");
            assert!(!p.is_empty(), "{label} program empty");
        }
    }

    #[test]
    fn gmc_never_more_flops_than_any_baseline() {
        let registry = KernelRegistry::blas_lapack();
        let config = GeneratorConfig::measured_scale();
        for chain in random_chains(&config, 25, 11) {
            let m = evaluate_chain(&chain, &registry, EvalMode::Flops).unwrap();
            let gmc = m.gmc();
            for (label, cost) in &m.costs[1..] {
                assert!(
                    gmc <= cost * (1.0 + 1e-9),
                    "GMC ({gmc}) beaten by {label} ({cost}) on {}",
                    chain
                );
            }
        }
    }

    #[test]
    fn measured_mode_validates_and_times() {
        let registry = KernelRegistry::blas_lapack();
        let config = GeneratorConfig {
            size_min: 10,
            size_max: 40,
            size_step: 10,
            len_max: 5,
            ..GeneratorConfig::default()
        };
        let chain = &random_chains(&config, 1, 5)[0];
        let m = evaluate_chain(
            chain,
            &registry,
            EvalMode::Measured {
                reps: 1,
                seed: 1,
                validate: true,
            },
        )
        .unwrap();
        assert_eq!(m.costs.len(), 10);
        assert!(m.costs.iter().all(|(_, t)| *t > 0.0));
    }

    #[test]
    fn fig8_speedups_shape() {
        let registry = KernelRegistry::blas_lapack();
        let config = GeneratorConfig::measured_scale();
        let results: Vec<_> = random_chains(&config, 10, 21)
            .iter()
            .map(|c| evaluate_chain(c, &registry, EvalMode::Flops).unwrap())
            .collect();
        let speedups = fig8_speedups(&results);
        assert_eq!(speedups.len(), 9);
        // By optimality, every FLOP speedup is ≥ 1.
        for (label, s) in &speedups {
            assert!(*s >= 1.0, "{label} speedup {s} < 1");
        }
    }

    #[test]
    fn fig9_stats_flops_mode() {
        let registry = KernelRegistry::blas_lapack();
        let config = GeneratorConfig::measured_scale();
        let results: Vec<_> = random_chains(&config, 15, 22)
            .iter()
            .map(|c| evaluate_chain(c, &registry, EvalMode::Flops).unwrap())
            .collect();
        let stats = fig9_stats(&results);
        // In FLOPs mode GMC is optimal, hence always fastest.
        assert_eq!(stats.gmc_fastest_fraction, 1.0);
        assert!(stats.worst_gmc_to_best_ratio <= 1.0 + 1e-9);
        let rows = fig9_rows(&results);
        assert_eq!(rows.len(), 15);
        assert!(rows.windows(2).all(|w| w[0].gmc() <= w[1].gmc()));
    }
}
