//! Plain-text report rendering for the experiment drivers.

use crate::harness::{ChainMeasurement, Fig9Stats};

/// Formats a cost for display: seconds with engineering units when
/// small, scientific notation for FLOPs.
pub fn fmt_cost(c: f64) -> String {
    if c == 0.0 {
        return "0".to_owned();
    }
    if c < 1.0 {
        if c < 1e-3 {
            format!("{:.1}us", c * 1e6)
        } else {
            format!("{:.2}ms", c * 1e3)
        }
    } else if c < 1e4 {
        format!("{c:.3}")
    } else {
        format!("{c:.3e}")
    }
}

/// Renders the Fig. 8 bar data as an aligned two-column table.
pub fn fig8_table(speedups: &[(String, f64)]) -> String {
    let mut out = String::from("baseline  avg speedup of GMC\n");
    for (label, s) in speedups {
        out.push_str(&format!("{label:<9} {s:>8.2}x\n"));
    }
    if !speedups.is_empty() {
        let overall = speedups.iter().map(|(_, s)| s).sum::<f64>() / speedups.len() as f64;
        out.push_str(&format!("{:<9} {overall:>8.2}x\n", "overall"));
    }
    out
}

/// Renders the Fig. 9 series: one row per problem (sorted by GMC cost),
/// one column per implementation, tab separated.
pub fn fig9_table(rows: &[&ChainMeasurement]) -> String {
    let mut out = String::new();
    if let Some(first) = rows.first() {
        out.push_str("problem");
        for (label, _) in &first.costs {
            out.push('\t');
            out.push_str(label);
        }
        out.push('\n');
    }
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!("{i}"));
        for (_, c) in &row.costs {
            out.push('\t');
            out.push_str(&fmt_cost(*c));
        }
        out.push('\n');
    }
    out
}

/// Renders the Fig. 9 summary statistics with the paper's reference
/// values alongside.
pub fn fig9_stats_table(stats: &Fig9Stats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "GMC fastest:                 {:>5.1}%   (paper: 86%)\n",
        stats.gmc_fastest_fraction * 100.0
    ));
    out.push_str(&format!(
        "worst GMC/best ratio:        {:>5.2}    (paper: 1.66)\n",
        stats.worst_gmc_to_best_ratio
    ));
    out.push_str(&format!(
        "others >1.1x faster than GMC: {:>4.1}%   (paper: 4%)\n",
        stats.other_beats_gmc_by_10pct * 100.0
    ));
    out.push_str("baseline >10x slower than GMC (paper: 10%..25%):\n");
    for (label, frac) in &stats.baseline_10x_slower {
        out.push_str(&format!("  {label:<8} {:>5.1}%\n", frac * 100.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_formatting() {
        assert_eq!(fmt_cost(0.0), "0");
        assert_eq!(fmt_cost(0.5e-6 * 3.0), "1.5us");
        assert_eq!(fmt_cost(0.0123), "12.30ms");
        assert_eq!(fmt_cost(2.0), "2.000");
        assert!(fmt_cost(3.16e8).contains('e'));
    }

    #[test]
    fn fig8_table_renders() {
        let t = fig8_table(&[("Jl n".into(), 10.5), ("Mat r".into(), 6.2)]);
        assert!(t.contains("Jl n"));
        assert!(t.contains("10.50x"));
        assert!(t.contains("overall"));
    }
}
