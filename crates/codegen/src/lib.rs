//! Program IR and code emitters for GMC kernel sequences (paper
//! Sec. 3.5).
//!
//! The GMC algorithm (and each baseline strategy) produces a
//! [`Program`]: a straight-line sequence of [`Instruction`]s in
//! dependency order, each pairing a destination temporary with a
//! [`gmc_kernels::KernelOp`]. Emitters translate programs to source
//! text:
//!
//! * [`JuliaEmitter`] — the paper's target (Table 2 style, with in-place
//!   buffer reuse),
//! * [`RustEmitter`] — Rust code against the `gmc-runtime` helpers,
//! * [`PseudoEmitter`] — mathematical pseudocode for reports.
//!
//! # Example
//!
//! ```
//! use gmc_codegen::{Emitter, Instruction, JuliaEmitter, Program};
//! use gmc_expr::{Operand, PropertySet, Shape};
//! use gmc_kernels::KernelOp;
//!
//! let a = Operand::matrix("A", 4, 5);
//! let b = Operand::matrix("B", 5, 6);
//! let t = Operand::temporary("T", Shape::new(4, 6), PropertySet::new());
//! let program = Program::new(vec![Instruction::new(
//!     t,
//!     KernelOp::Gemm { ta: false, tb: false, a, b },
//! )]);
//! let code = JuliaEmitter::default().emit(&program);
//! assert!(code.contains("BLAS.gemm('N', 'N', 1.0, A, B)"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod julia;
mod program;
mod pseudo;
mod rust;
mod sym;

pub use julia::JuliaEmitter;
pub use program::{Instruction, Program};
pub use pseudo::{math_form, PseudoEmitter};
pub use rust::RustEmitter;
pub use sym::emit_size_generic_rust;

/// Translates a [`Program`] into source text for some target language.
pub trait Emitter {
    /// Emits the program as source text.
    fn emit(&self, program: &Program) -> String;

    /// The name of the target language (e.g. `"julia"`).
    fn language(&self) -> &str;
}
