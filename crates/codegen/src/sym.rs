//! Size-generic program emission.
//!
//! The emitted kernel calls reference operands by name only, so a
//! generated program is already valid for *any* sizes that select the
//! same kernel sequence. This module makes that explicit: it wraps a
//! program in a Rust function parameterized by the chain's dimension
//! variables, with the symbolic shape of every input documented in the
//! signature — one emitted artifact serves a whole size region of the
//! plan cache.

use crate::program::Program;
use crate::rust::RustEmitter;
use crate::Emitter;
use gmc_expr::SymChain;

/// Emits a Rust function computing `program`, generic over the
/// dimension variables of `chain`.
///
/// The function takes one `usize` parameter per dimension variable
/// (documenting the size region the plan was compiled for) and one
/// matrix parameter per program input, annotated with its symbolic
/// shape. The body is the [`RustEmitter`] output.
///
/// # Example
///
/// ```
/// use gmc_codegen::emit_size_generic_rust;
/// use gmc_codegen::{Instruction, Program};
/// use gmc_expr::{Dim, Operand, PropertySet, Shape, SymChain, SymFactor, SymOperand};
/// use gmc_kernels::KernelOp;
///
/// let (n, m) = (Dim::var("n"), Dim::var("m"));
/// let chain = SymChain::new(vec![
///     SymFactor::plain(SymOperand::new("A", n, m)),
///     SymFactor::plain(SymOperand::new("B", m, n)),
/// ])
/// .unwrap();
/// let a = Operand::matrix("A", 4, 5);
/// let b = Operand::matrix("B", 5, 4);
/// let t = Operand::temporary("T0_1", Shape::new(4, 4), PropertySet::new());
/// let program = Program::new(vec![Instruction::new(
///     t,
///     KernelOp::Gemm { ta: false, tb: false, a, b },
/// )]);
/// let code = emit_size_generic_rust(&program, &chain);
/// assert!(code.contains("pub fn compute(n: usize, m: usize"));
/// assert!(code.contains("A: n x m"));
/// ```
pub fn emit_size_generic_rust(program: &Program, chain: &SymChain) -> String {
    let mut out = String::new();
    out.push_str("/// Computes the chain ");
    out.push_str(&chain.to_string());
    out.push_str(" for any sizes in the plan's region.\n");
    out.push_str("///\n/// Operand shapes:\n");
    for f in chain.factors() {
        let s = f.operand().shape();
        out.push_str(&format!(
            "///   {}: {} x {}\n",
            f.operand().name(),
            s.rows(),
            s.cols()
        ));
    }
    // One namespace for every emitted parameter. The body refers to
    // operands by their sanitized names, so those are fixed; dimension
    // parameters (referenced nowhere in the body) yield on collision —
    // a dim `n` next to an operand `N` becomes `n_dim: usize`.
    //
    // Two *distinct* operands whose names sanitize to one identifier
    // (`A` and `a`) cannot be represented: the body would silently read
    // one matrix for both. Emit a `compile_error!` so the generated
    // code fails loudly instead of mis-wiring.
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut operand_params: Vec<String> = Vec::new();
    let mut collisions: Vec<String> = Vec::new();
    for input in program.inputs() {
        let ident = sanitize(input.name());
        if used.insert(ident.clone()) {
            operand_params.push(format!("{ident}: &Matrix"));
        } else {
            collisions.push(input.name().to_owned());
        }
    }
    for name in &collisions {
        out.push_str(&format!(
            "compile_error!(\"gmc-codegen: operand `{name}` collides with another operand \
             after identifier sanitization\");\n"
        ));
    }
    let mut params: Vec<String> = chain
        .vars()
        .iter()
        .map(|v| {
            let mut ident = sanitize(v.name());
            while !used.insert(ident.clone()) {
                ident.push_str("_dim");
            }
            format!("{ident}: usize")
        })
        .collect();
    params.extend(operand_params);
    out.push_str(&format!(
        "pub fn compute({}) -> Result<Matrix, OpError> {{\n",
        params.join(", ")
    ));
    for line in RustEmitter.emit(program).lines() {
        out.push_str("    ");
        out.push_str(line);
        out.push('\n');
    }
    if let Some(last) = program.instructions().last() {
        out.push_str(&format!("    Ok({})\n", sanitize(last.dest().name())));
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Instruction;
    use gmc_expr::{Dim, Operand, PropertySet, Shape, SymFactor, SymOperand};
    use gmc_kernels::KernelOp;

    #[test]
    fn emits_dim_parameters_and_inputs() {
        let (n, m) = (Dim::var("cg_n"), Dim::var("cg_m"));
        let chain = SymChain::new(vec![
            SymFactor::plain(SymOperand::new("A", n, m)),
            SymFactor::plain(SymOperand::new("B", m, n)),
            SymFactor::plain(SymOperand::new("C", n, m)),
        ])
        .unwrap();
        let a = Operand::matrix("A", 4, 5);
        let b = Operand::matrix("B", 5, 4);
        let c = Operand::matrix("C", 4, 5);
        let t0 = Operand::temporary("T0_1", Shape::new(4, 4), PropertySet::new());
        let t1 = Operand::temporary("T0_2", Shape::new(4, 5), PropertySet::new());
        let program = Program::new(vec![
            Instruction::new(
                t0.clone(),
                KernelOp::Gemm {
                    ta: false,
                    tb: false,
                    a,
                    b,
                },
            ),
            Instruction::new(
                t1,
                KernelOp::Gemm {
                    ta: false,
                    tb: false,
                    a: t0,
                    b: c,
                },
            ),
        ]);
        let code = emit_size_generic_rust(&program, &chain);
        assert!(
            code.contains(
                "pub fn compute(cg_n: usize, cg_m: usize, a: &Matrix, b: &Matrix, c: &Matrix)"
            ),
            "{code}"
        );
        assert!(code.contains("A: cg_n x cg_m"), "{code}");
        assert!(
            code.contains("let t0_1 = ops::gemm(&a, false, &b, false);"),
            "{code}"
        );
        assert!(code.contains("Ok(t0_2)"), "{code}");
    }

    #[test]
    fn distinct_operands_colliding_after_sanitization_fail_loudly() {
        // `A` and `a` are distinct operands but share the sanitized
        // identifier `a`; the emitted code must not silently read one
        // matrix for both.
        let n = Dim::var("cg2_n");
        let chain = SymChain::new(vec![
            SymFactor::plain(SymOperand::new("A", n, n)),
            SymFactor::plain(SymOperand::new("a", n, n)),
        ])
        .unwrap();
        let upper = Operand::matrix("A", 4, 4);
        let lower = Operand::matrix("a", 4, 4);
        let t = Operand::temporary("T0_1", Shape::new(4, 4), PropertySet::new());
        let program = Program::new(vec![Instruction::new(
            t,
            KernelOp::Gemm {
                ta: false,
                tb: false,
                a: upper,
                b: lower,
            },
        )]);
        let code = emit_size_generic_rust(&program, &chain);
        assert!(code.contains("compile_error!"), "{code}");
        assert!(code.contains("operand `a` collides"), "{code}");
    }

    #[test]
    fn dim_parameters_yield_to_colliding_operand_names() {
        // Operand `N` sanitizes to `n`, the same identifier as the dim
        // variable `n`; the body references the operand, so the dim
        // parameter is renamed.
        let n = Dim::var("n");
        let chain = SymChain::new(vec![
            SymFactor::plain(SymOperand::new("N", n, n)),
            SymFactor::plain(SymOperand::new("B", n, n)),
        ])
        .unwrap();
        let big_n = Operand::matrix("N", 4, 4);
        let b = Operand::matrix("B", 4, 4);
        let t = Operand::temporary("T0_1", Shape::new(4, 4), PropertySet::new());
        let program = Program::new(vec![Instruction::new(
            t,
            KernelOp::Gemm {
                ta: false,
                tb: false,
                a: big_n,
                b,
            },
        )]);
        let code = emit_size_generic_rust(&program, &chain);
        assert!(
            code.contains("pub fn compute(n_dim: usize, n: &Matrix, b: &Matrix)"),
            "{code}"
        );
        assert!(code.contains("ops::gemm(&n, false, &b, false)"), "{code}");
    }
}
