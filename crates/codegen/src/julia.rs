//! Julia code emission, in the style of the paper's Table 2.
//!
//! The GMC implementation in the paper generates Julia code that calls
//! BLAS/LAPACK wrappers, reusing input buffers for in-place kernels:
//!
//! ```text
//! trmm!('R', 'L', 'T', 'N', 1.0, C, B)
//! posv!('L', A, B)
//! ```
//!
//! This emitter reproduces that style: in-place kernels (`trmm!`,
//! `trsm!`, `posv!`, `gesv!`) overwrite their right-hand side buffer
//! when it is dead afterwards, and insert `copy(...)` when it is still
//! live (a tiny liveness analysis over the straight-line program).

use crate::program::Program;
use crate::Emitter;
use gmc_kernels::{KernelOp, Side, Uplo};
use std::collections::HashMap;

/// Emits Julia source for a [`Program`].
#[derive(Clone, Copy, Debug)]
pub struct JuliaEmitter {
    /// Reuse dead buffers for in-place kernels (paper style). When
    /// false, every instruction assigns a fresh variable.
    pub reuse_buffers: bool,
}

impl Default for JuliaEmitter {
    fn default() -> Self {
        JuliaEmitter {
            reuse_buffers: true,
        }
    }
}

fn side(s: Side) -> char {
    match s {
        Side::Left => 'L',
        Side::Right => 'R',
    }
}

fn uplo(u: Uplo) -> char {
    match u {
        Uplo::Lower => 'L',
        Uplo::Upper => 'U',
    }
}

fn t(flag: bool) -> char {
    if flag {
        'T'
    } else {
        'N'
    }
}

impl Emitter for JuliaEmitter {
    fn language(&self) -> &str {
        "julia"
    }

    fn emit(&self, program: &Program) -> String {
        let mut lines: Vec<String> = Vec::new();
        // Current buffer holding each (symbolic) operand's value.
        let mut buffer: HashMap<String, String> = HashMap::new();
        let buf = |buffer: &HashMap<String, String>, name: &str| -> String {
            buffer.get(name).cloned().unwrap_or_else(|| name.to_owned())
        };

        for (idx, instr) in program.instructions().iter().enumerate() {
            let dest = instr.dest().name().to_owned();
            match instr.op() {
                KernelOp::Gemm { ta, tb, a, b } => {
                    lines.push(format!(
                        "{dest} = BLAS.gemm('{}', '{}', 1.0, {}, {})",
                        t(*ta),
                        t(*tb),
                        buf(&buffer, a.name()),
                        buf(&buffer, b.name())
                    ));
                }
                KernelOp::Trmm {
                    side: s,
                    uplo: u,
                    trans,
                    a,
                    b,
                } => {
                    let a_buf = buf(&buffer, a.name());
                    let target = self.inplace_target(
                        program,
                        idx,
                        b.name(),
                        &dest,
                        &a_buf,
                        &mut buffer,
                        &mut lines,
                    );
                    lines.push(format!(
                        "trmm!('{}', '{}', '{}', 'N', 1.0, {}, {})",
                        side(*s),
                        uplo(*u),
                        t(*trans),
                        buf(&buffer, a.name()),
                        target
                    ));
                    buffer.insert(dest, target);
                    continue;
                }
                KernelOp::Symm { side: s, a, b } => {
                    lines.push(format!(
                        "{dest} = BLAS.symm('{}', 'L', 1.0, {}, {})",
                        side(*s),
                        buf(&buffer, a.name()),
                        buf(&buffer, b.name())
                    ));
                }
                KernelOp::Trsm {
                    side: s,
                    uplo: u,
                    trans,
                    tb,
                    a,
                    b,
                } => {
                    let target = if *tb {
                        let bb = buf(&buffer, b.name());
                        lines.push(format!("{dest} = Matrix({bb}')"));
                        dest.clone()
                    } else {
                        let a_buf = buf(&buffer, a.name());
                        self.inplace_target(
                            program,
                            idx,
                            b.name(),
                            &dest,
                            &a_buf,
                            &mut buffer,
                            &mut lines,
                        )
                    };
                    lines.push(format!(
                        "trsm!('{}', '{}', '{}', 'N', 1.0, {}, {})",
                        side(*s),
                        uplo(*u),
                        t(*trans),
                        buf(&buffer, a.name()),
                        target
                    ));
                    buffer.insert(dest, target);
                    continue;
                }
                KernelOp::Syrk { trans, a } => {
                    lines.push(format!(
                        "{dest} = BLAS.syrk('L', '{}', 1.0, {})",
                        t(*trans),
                        buf(&buffer, a.name())
                    ));
                }
                KernelOp::Gesv {
                    side: s,
                    trans,
                    tb,
                    a,
                    b,
                } => {
                    let target = if *tb {
                        let bb = buf(&buffer, b.name());
                        lines.push(format!("{dest} = Matrix({bb}')"));
                        dest.clone()
                    } else {
                        let a_buf = buf(&buffer, a.name());
                        self.inplace_target(
                            program,
                            idx,
                            b.name(),
                            &dest,
                            &a_buf,
                            &mut buffer,
                            &mut lines,
                        )
                    };
                    // gesv! factorizes in place: protect A if live (or
                    // transposed).
                    let a_name = buf(&buffer, a.name());
                    let a_expr = match (trans, s) {
                        // A right-side solve X·A = B is AᵀXᵀ = Bᵀ; the
                        // Julia wrapper call works on the transposed
                        // system.
                        (false, Side::Left) => {
                            if program.live_after(idx, a.name()) {
                                format!("copy({a_name})")
                            } else {
                                a_name
                            }
                        }
                        (true, Side::Left) => format!("Matrix({a_name}')"),
                        (false, Side::Right) => format!("Matrix({a_name}')"),
                        (true, Side::Right) => {
                            if program.live_after(idx, a.name()) {
                                format!("copy({a_name})")
                            } else {
                                a_name
                            }
                        }
                    };
                    match s {
                        Side::Left => lines.push(format!("gesv!({a_expr}, {target})")),
                        Side::Right => {
                            // Solve on the transposed right-hand side.
                            lines.push(format!("{target} = Matrix({target}')"));
                            lines.push(format!("gesv!({a_expr}, {target})"));
                            lines.push(format!("{target} = Matrix({target}')"));
                        }
                    }
                    buffer.insert(dest, target);
                    continue;
                }
                KernelOp::Posv { side: s, tb, a, b } => {
                    let target = if *tb {
                        let bb = buf(&buffer, b.name());
                        lines.push(format!("{dest} = Matrix({bb}')"));
                        dest.clone()
                    } else {
                        let a_buf = buf(&buffer, a.name());
                        self.inplace_target(
                            program,
                            idx,
                            b.name(),
                            &dest,
                            &a_buf,
                            &mut buffer,
                            &mut lines,
                        )
                    };
                    let a_name = buf(&buffer, a.name());
                    let a_expr = if program.live_after(idx, a.name()) {
                        format!("copy({a_name})")
                    } else {
                        a_name
                    };
                    match s {
                        Side::Left => lines.push(format!("posv!('L', {a_expr}, {target})")),
                        Side::Right => {
                            lines.push(format!("{target} = Matrix({target}')"));
                            lines.push(format!("posv!('L', {a_expr}, {target})"));
                            lines.push(format!("{target} = Matrix({target}')"));
                        }
                    }
                    buffer.insert(dest, target);
                    continue;
                }
                KernelOp::Diag {
                    side: s,
                    inv,
                    tb,
                    d,
                    b,
                } => {
                    let bb = buf(&buffer, b.name());
                    let bexpr = if *tb { format!("Matrix({bb}')") } else { bb };
                    let dd = format!("Diagonal({})", buf(&buffer, d.name()));
                    let rhs = match (s, inv) {
                        (Side::Left, false) => format!("{dd} * {bexpr}"),
                        (Side::Left, true) => format!("{dd} \\ {bexpr}"),
                        (Side::Right, false) => format!("{bexpr} * {dd}"),
                        (Side::Right, true) => format!("{bexpr} / {dd}"),
                    };
                    lines.push(format!("{dest} = {rhs}"));
                }
                KernelOp::Gemv { trans, a, x } => {
                    lines.push(format!(
                        "{dest} = BLAS.gemv('{}', 1.0, {}, {})",
                        t(*trans),
                        buf(&buffer, a.name()),
                        buf(&buffer, x.name())
                    ));
                }
                KernelOp::Trmv {
                    uplo: u,
                    trans,
                    a,
                    x,
                } => {
                    lines.push(format!(
                        "{dest} = BLAS.trmv('{}', '{}', 'N', {}, {})",
                        uplo(*u),
                        t(*trans),
                        buf(&buffer, a.name()),
                        buf(&buffer, x.name())
                    ));
                }
                KernelOp::Symv { a, x } => {
                    lines.push(format!(
                        "{dest} = BLAS.symv('L', 1.0, {}, {})",
                        buf(&buffer, a.name()),
                        buf(&buffer, x.name())
                    ));
                }
                KernelOp::Trsv {
                    uplo: u,
                    trans,
                    a,
                    x,
                } => {
                    lines.push(format!(
                        "{dest} = BLAS.trsv('{}', '{}', 'N', {}, {})",
                        uplo(*u),
                        t(*trans),
                        buf(&buffer, a.name()),
                        buf(&buffer, x.name())
                    ));
                }
                KernelOp::Ger { x, y } => {
                    lines.push(format!(
                        "{dest} = {} * {}'",
                        buf(&buffer, x.name()),
                        buf(&buffer, y.name())
                    ));
                }
                KernelOp::Dot { x, y } => {
                    lines.push(format!(
                        "{dest} = dot({}, {})",
                        buf(&buffer, x.name()),
                        buf(&buffer, y.name())
                    ));
                }
                KernelOp::Copy { b } => {
                    lines.push(format!("{dest} = copy({})", buf(&buffer, b.name())));
                }
                KernelOp::Inv { kind, trans, a } => {
                    let aa = buf(&buffer, a.name());
                    let call = match kind {
                        gmc_kernels::InvKind::Spd => format!("inv(cholesky({aa}))"),
                        gmc_kernels::InvKind::Diagonal => format!("inv(Diagonal({aa}))"),
                        _ => format!("inv({aa})"),
                    };
                    if *trans {
                        lines.push(format!("{dest} = Matrix({call}')"));
                    } else {
                        lines.push(format!("{dest} = {call}"));
                    }
                }
                KernelOp::InvPair { ta, tb, a, b } => {
                    let bb = buf(&buffer, b.name());
                    let bexpr = if *tb { format!("{bb}'") } else { bb };
                    lines.push(format!("{dest} = inv({bexpr})"));
                    let aa = buf(&buffer, a.name());
                    let aexpr = if *ta {
                        format!("Matrix({aa}')")
                    } else if program.live_after(idx, a.name()) {
                        format!("copy({aa})")
                    } else {
                        aa
                    };
                    lines.push(format!("gesv!({aexpr}, {dest})"));
                }
            }
            buffer.insert(dest.clone(), dest);
        }

        if let Some(last) = program.instructions().last() {
            let result = buf(&buffer, last.dest().name());
            lines.push(format!("# result in {result}"));
        }
        lines.join("\n")
    }
}

impl JuliaEmitter {
    /// Picks the buffer an in-place kernel writes to: the right-hand
    /// side's current buffer if dead, otherwise a fresh copy.
    #[allow(clippy::too_many_arguments)] // mirrors the BLAS call it emits
    fn inplace_target(
        &self,
        program: &Program,
        idx: usize,
        b_name: &str,
        dest: &str,
        conflict: &str,
        buffer: &mut HashMap<String, String>,
        lines: &mut Vec<String>,
    ) -> String {
        let current = buffer
            .get(b_name)
            .cloned()
            .unwrap_or_else(|| b_name.to_owned());
        // Reusing the right-hand side's buffer is only legal when it is
        // dead afterwards AND distinct from the factor operand's buffer
        // (an in-place kernel must not alias its two arguments).
        if self.reuse_buffers && !program.live_after(idx, b_name) && current != conflict {
            current
        } else {
            lines.push(format!("{dest} = copy({current})"));
            dest.to_owned()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Instruction;
    use gmc_expr::{Operand, Property, PropertySet, Shape};

    #[test]
    fn paper_table2_gmc_row() {
        // X := A⁻¹BCᵀ, A SPD, C lower triangular. The paper's generated
        // code: trmm!('R','L','T','N',1.0,C,B); posv!('L',A,B).
        let a = Operand::square("A", 2000).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 2000, 200);
        let c = Operand::square("C", 200).with_property(Property::LowerTriangular);
        let t0 = Operand::temporary("T1_2", Shape::new(2000, 200), PropertySet::new());
        let t1 = Operand::temporary("T0_2", Shape::new(2000, 200), PropertySet::new());
        let program = Program::new(vec![
            Instruction::new(
                t0.clone(),
                KernelOp::Trmm {
                    side: gmc_kernels::Side::Right,
                    uplo: Uplo::Lower,
                    trans: true,
                    a: c,
                    b: b.clone(),
                },
            ),
            Instruction::new(
                t1,
                KernelOp::Posv {
                    side: gmc_kernels::Side::Left,
                    tb: false,
                    a,
                    b: t0,
                },
            ),
        ]);
        let code = JuliaEmitter::default().emit(&program);
        let expected = "\
trmm!('R', 'L', 'T', 'N', 1.0, C, B)
posv!('L', A, B)
# result in B";
        assert_eq!(code, expected);
    }

    #[test]
    fn copy_inserted_when_buffer_live() {
        // B is used by both instructions: the first in-place kernel must
        // not clobber it.
        let l = Operand::square("L", 4).with_property(Property::LowerTriangular);
        let b = Operand::matrix("B", 4, 4);
        let t0 = Operand::temporary("T0", Shape::new(4, 4), PropertySet::new());
        let t1 = Operand::temporary("T1", Shape::new(4, 4), PropertySet::new());
        let program = Program::new(vec![
            Instruction::new(
                t0.clone(),
                KernelOp::Trmm {
                    side: gmc_kernels::Side::Left,
                    uplo: Uplo::Lower,
                    trans: false,
                    a: l,
                    b: b.clone(),
                },
            ),
            Instruction::new(
                t1,
                KernelOp::Gemm {
                    ta: false,
                    tb: false,
                    a: t0,
                    b,
                },
            ),
        ]);
        let code = JuliaEmitter::default().emit(&program);
        assert!(code.contains("T0 = copy(B)"), "got:\n{code}");
        assert!(code.contains("trmm!('L', 'L', 'N', 'N', 1.0, L, T0)"));
    }

    #[test]
    fn no_reuse_mode_always_copies() {
        let l = Operand::square("L", 4).with_property(Property::LowerTriangular);
        let b = Operand::matrix("B", 4, 4);
        let t0 = Operand::temporary("T0", Shape::new(4, 4), PropertySet::new());
        let program = Program::new(vec![Instruction::new(
            t0,
            KernelOp::Trmm {
                side: gmc_kernels::Side::Left,
                uplo: Uplo::Lower,
                trans: false,
                a: l,
                b,
            },
        )]);
        let code = JuliaEmitter {
            reuse_buffers: false,
        }
        .emit(&program);
        assert!(code.contains("T0 = copy(B)"));
    }

    #[test]
    fn functional_ops_assign_fresh_variables() {
        let a = Operand::matrix("A", 3, 4);
        let x = Operand::col_vector("x", 4);
        let t0 = Operand::temporary("T0", Shape::col_vector(3), PropertySet::new());
        let program = Program::new(vec![Instruction::new(
            t0,
            KernelOp::Gemv { trans: false, a, x },
        )]);
        let code = JuliaEmitter::default().emit(&program);
        assert!(code.contains("T0 = BLAS.gemv('N', 1.0, A, x)"));
        assert!(code.ends_with("# result in T0"));
    }
}
