//! Mathematical pseudocode emission, for reports and teaching output.

use crate::program::Program;
use crate::Emitter;
use gmc_kernels::{KernelOp, Side};

/// Emits one line per instruction in mathematical notation, annotated
/// with the kernel routine:
///
/// ```text
/// T1_2 := B C^T        [trmm]
/// T0_2 := A^-1 T1_2    [posv]
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct PseudoEmitter;

/// Renders the mathematical form of an operation, e.g. `A^-1 T1`.
pub fn math_form(op: &KernelOp) -> String {
    fn t(name: &str, flag: bool) -> String {
        if flag {
            format!("{name}^T")
        } else {
            name.to_owned()
        }
    }
    match op {
        KernelOp::Gemm { ta, tb, a, b } => {
            format!("{} {}", t(a.name(), *ta), t(b.name(), *tb))
        }
        KernelOp::Trmm {
            side, trans, a, b, ..
        } => match side {
            Side::Left => format!("{} {}", t(a.name(), *trans), b.name()),
            Side::Right => format!("{} {}", b.name(), t(a.name(), *trans)),
        },
        KernelOp::Symm { side, a, b } => match side {
            Side::Left => format!("{} {}", a.name(), b.name()),
            Side::Right => format!("{} {}", b.name(), a.name()),
        },
        KernelOp::Trsm {
            side,
            trans,
            tb,
            a,
            b,
            ..
        }
        | KernelOp::Gesv {
            side,
            trans,
            tb,
            a,
            b,
        } => {
            let inv = if *trans {
                format!("{}^-T", a.name())
            } else {
                format!("{}^-1", a.name())
            };
            match side {
                Side::Left => format!("{inv} {}", t(b.name(), *tb)),
                Side::Right => format!("{} {inv}", t(b.name(), *tb)),
            }
        }
        KernelOp::Posv { side, tb, a, b } => {
            let inv = format!("{}^-1", a.name());
            match side {
                Side::Left => format!("{inv} {}", t(b.name(), *tb)),
                Side::Right => format!("{} {inv}", t(b.name(), *tb)),
            }
        }
        KernelOp::Syrk { trans, a } => {
            if *trans {
                format!("{}^T {}", a.name(), a.name())
            } else {
                format!("{} {}^T", a.name(), a.name())
            }
        }
        KernelOp::Diag {
            side,
            inv,
            tb,
            d,
            b,
        } => {
            let dd = if *inv {
                format!("{}^-1", d.name())
            } else {
                d.name().to_owned()
            };
            match side {
                Side::Left => format!("{dd} {}", t(b.name(), *tb)),
                Side::Right => format!("{} {dd}", t(b.name(), *tb)),
            }
        }
        KernelOp::Gemv { trans, a, x } => format!("{} {}", t(a.name(), *trans), x.name()),
        KernelOp::Trmv { trans, a, x, .. } => format!("{} {}", t(a.name(), *trans), x.name()),
        KernelOp::Symv { a, x } => format!("{} {}", a.name(), x.name()),
        KernelOp::Trsv { trans, a, x, .. } => {
            let inv = if *trans {
                format!("{}^-T", a.name())
            } else {
                format!("{}^-1", a.name())
            };
            format!("{inv} {}", x.name())
        }
        KernelOp::Ger { x, y } => format!("{} {}^T", x.name(), y.name()),
        KernelOp::Dot { x, y } => format!("{}^T {}", x.name(), y.name()),
        KernelOp::Copy { b } => b.name().to_owned(),
        KernelOp::Inv { trans, a, .. } => {
            if *trans {
                format!("{}^-T", a.name())
            } else {
                format!("{}^-1", a.name())
            }
        }
        KernelOp::InvPair { ta, tb, a, b } => {
            let left = if *ta {
                format!("{}^-T", a.name())
            } else {
                format!("{}^-1", a.name())
            };
            let right = if *tb {
                format!("{}^-T", b.name())
            } else {
                format!("{}^-1", b.name())
            };
            format!("{left} {right}")
        }
    }
}

impl Emitter for PseudoEmitter {
    fn language(&self) -> &str {
        "pseudo"
    }

    fn emit(&self, program: &Program) -> String {
        let width = program
            .instructions()
            .iter()
            .map(|i| i.dest().name().len() + math_form(i.op()).len())
            .max()
            .unwrap_or(0);
        program
            .instructions()
            .iter()
            .map(|i| {
                let math = math_form(i.op());
                let pad = width + 4 - (i.dest().name().len() + math.len());
                format!(
                    "{} := {}{}[{}]",
                    i.dest().name(),
                    math,
                    " ".repeat(pad),
                    i.op().family()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Instruction;
    use gmc_expr::{Operand, Property, PropertySet, Shape};
    use gmc_kernels::Uplo;

    #[test]
    fn math_forms() {
        let a = Operand::square("A", 4).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 4, 2);
        let op = KernelOp::Posv {
            side: Side::Left,
            tb: false,
            a,
            b,
        };
        assert_eq!(math_form(&op), "A^-1 B");
    }

    #[test]
    fn emit_annotates_kernels() {
        let c = Operand::square("C", 2).with_property(Property::LowerTriangular);
        let b = Operand::matrix("B", 4, 2);
        let t = Operand::temporary("T1_2", Shape::new(4, 2), PropertySet::new());
        let program = Program::new(vec![Instruction::new(
            t,
            KernelOp::Trmm {
                side: Side::Right,
                uplo: Uplo::Lower,
                trans: true,
                a: c,
                b,
            },
        )]);
        let text = PseudoEmitter.emit(&program);
        assert!(text.contains("T1_2 := B C^T"));
        assert!(text.contains("[trmm]"));
    }
}
