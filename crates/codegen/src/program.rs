//! The program IR: an ordered sequence of kernel calls.

use gmc_expr::Operand;
use gmc_kernels::KernelOp;
use std::collections::HashSet;
use std::fmt;

/// One instruction: a kernel operation and the temporary receiving its
/// result.
#[derive(Clone, Debug)]
pub struct Instruction {
    dest: Operand,
    op: KernelOp,
}

impl Instruction {
    /// Creates an instruction.
    pub fn new(dest: Operand, op: KernelOp) -> Self {
        Instruction { dest, op }
    }

    /// The destination operand.
    pub fn dest(&self) -> &Operand {
        &self.dest
    }

    /// The kernel operation.
    pub fn op(&self) -> &KernelOp {
        &self.op
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} := {}", self.dest, self.op)
    }
}

/// A straight-line program computing a matrix chain: the output of the
/// GMC algorithm (and of the baseline strategies), the input of the code
/// emitters and of the runtime interpreter.
///
/// Instructions are in dependency order; the last instruction's
/// destination is the program result.
#[derive(Clone, Debug, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates a program from instructions in dependency order.
    pub fn new(instructions: Vec<Instruction>) -> Self {
        Program { instructions }
    }

    /// The instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// The result operand (destination of the last instruction).
    ///
    /// # Panics
    ///
    /// Panics if the program is empty.
    pub fn result(&self) -> &Operand {
        self.instructions
            .last()
            .expect("program must not be empty")
            .dest()
    }

    /// The input operands: everything referenced before being defined.
    pub fn inputs(&self) -> Vec<&Operand> {
        let mut defined: HashSet<&str> = HashSet::new();
        let mut seen: HashSet<&str> = HashSet::new();
        let mut inputs = Vec::new();
        for instr in &self.instructions {
            for arg in instr.op().operands() {
                if !defined.contains(arg.name()) && seen.insert(arg.name()) {
                    inputs.push(arg);
                }
            }
            defined.insert(instr.dest().name());
        }
        inputs
    }

    /// Total FLOP count (sum over instructions, paper cost conventions).
    pub fn flops(&self) -> f64 {
        self.instructions.iter().map(|i| i.op().flops()).sum()
    }

    /// Checks that every operand is defined (an input or an earlier
    /// destination) before use and that destinations are unique.
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut defined: HashSet<&str> = HashSet::new();
        for (idx, instr) in self.instructions.iter().enumerate() {
            if defined.contains(instr.dest().name()) {
                return Err(format!(
                    "instruction {idx}: destination {} redefined",
                    instr.dest()
                ));
            }
            defined.insert(instr.dest().name());
        }
        Ok(())
    }

    /// For each instruction index, whether each referenced operand is
    /// used again by any *later* instruction (true = live after this
    /// use). Used for buffer reuse in the emitters.
    pub fn live_after(&self, index: usize, name: &str) -> bool {
        self.instructions[index + 1..]
            .iter()
            .any(|instr| instr.op().operands().iter().any(|o| o.name() == name))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for instr in &self.instructions {
            writeln!(f, "{instr}")?;
        }
        Ok(())
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<I: IntoIterator<Item = Instruction>>(iter: I) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::Shape;

    fn sample() -> Program {
        let a = Operand::matrix("A", 4, 5);
        let b = Operand::matrix("B", 5, 6);
        let c = Operand::matrix("C", 6, 2);
        let t0 = Operand::temporary("T0", Shape::new(4, 6), Default::default());
        let t1 = Operand::temporary("T1", Shape::new(4, 2), Default::default());
        Program::new(vec![
            Instruction::new(
                t0.clone(),
                KernelOp::Gemm {
                    ta: false,
                    tb: false,
                    a,
                    b,
                },
            ),
            Instruction::new(
                t1,
                KernelOp::Gemm {
                    ta: false,
                    tb: false,
                    a: t0,
                    b: c,
                },
            ),
        ])
    }

    #[test]
    fn result_and_inputs() {
        let p = sample();
        assert_eq!(p.result().name(), "T1");
        let inputs: Vec<_> = p.inputs().iter().map(|o| o.name().to_owned()).collect();
        assert_eq!(inputs, vec!["A", "B", "C"]);
    }

    #[test]
    fn flops_accumulate() {
        let p = sample();
        assert_eq!(p.flops(), 2.0 * 4.0 * 6.0 * 5.0 + 2.0 * 4.0 * 2.0 * 6.0);
    }

    #[test]
    fn validation() {
        let p = sample();
        assert!(p.validate().is_ok());
        let dup = Program::new(vec![
            p.instructions()[0].clone(),
            p.instructions()[0].clone(),
        ]);
        assert!(dup.validate().is_err());
    }

    #[test]
    fn liveness() {
        let p = sample();
        // A is not used after instruction 0; T0 is used by instruction 1.
        assert!(!p.live_after(0, "A"));
        assert!(p.live_after(0, "T0"));
        assert!(!p.live_after(1, "T0"));
    }

    #[test]
    fn display() {
        let p = sample();
        let text = p.to_string();
        assert!(text.contains("T0 := gemm('N', 'N', A, B)"));
        assert!(text.contains("T1 := gemm('N', 'N', T0, C)"));
    }
}
