//! `gmc-obs`: the observability layer of the GMC serving stack.
//!
//! Std-only (no async runtime, no crates.io dependencies), designed to
//! sit on the serving hot path without measurable cost:
//!
//! * [`histogram`] — fixed-bucket log-linear latency histograms, moved
//!   here from `gmc-serve` (which re-exports it, bucket boundaries
//!   unchanged bit for bit).
//! * [`registry`] — a [`MetricsRegistry`] of counters, gauges and
//!   histograms under stable dotted names with **bounded label sets**:
//!   each metric family caps its distinct label combinations, and
//!   overflow funnels into a reserved `other` series so hostile or
//!   unbounded label values cannot grow memory without bound.
//! * [`prometheus`] — an [`Exposition`] builder rendering the
//!   Prometheus text format: families sorted by name, series sorted by
//!   label values, label values escaped, one `# HELP`/`# TYPE` pair
//!   per family, histograms as cumulative `_bucket`/`_sum`/`_count`
//!   series.
//! * [`trace`] — per-request traces: ns-resolution [`Span`]s per
//!   pipeline stage and a fixed-capacity, lock-cheap [`SlowTraceRing`]
//!   that retains the N slowest traces (an atomic floor check rejects
//!   fast requests without touching the lock), exportable as stable
//!   `gmc-traces/1` JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod prometheus;
pub mod registry;
pub mod trace;

pub use histogram::{HistogramSnapshot, LatencyHistogram};
pub use prometheus::Exposition;
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use trace::{SlowTraceRing, Span, Trace, TRACE_FORMAT};
