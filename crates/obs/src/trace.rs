//! Per-request traces and the slow-trace ring.
//!
//! A [`Trace`] is one completed request: a trace id, a class label,
//! the total latency, and ns-resolution [`Span`]s — one per pipeline
//! stage — that tile the total exactly (spans are consecutive, so
//! their durations sum to `total_ns`).
//!
//! The [`SlowTraceRing`] retains the N slowest traces seen so far. It
//! is lock-cheap on the hot path: a relaxed atomic *floor* holds the
//! smallest total currently worth keeping, so the overwhelming
//! majority of requests are rejected with a single atomic load, never
//! touching the mutex or even materializing their trace (the trace is
//! built by a closure only after admission). Snapshots export as
//! stable [`TRACE_FORMAT`] (`gmc-traces/1`) JSON.

use serde::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The stable JSON format identifier for exported traces.
pub const TRACE_FORMAT: &str = "gmc-traces/1";

/// One pipeline stage of a request: where it started (ns offset from
/// the request's enqueue instant) and how long it lasted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Stage name (one of the server's fixed stage set).
    pub stage: &'static str,
    /// Offset of the stage start from the request start, in ns.
    pub start_ns: u64,
    /// Stage duration in ns.
    pub dur_ns: u64,
}

/// One completed request trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Monotone per-server trace id.
    pub id: u64,
    /// Request label (structure name as submitted).
    pub label: String,
    /// Outcome class (`hit`, `miss`, an error code, …).
    pub class: String,
    /// End-to-end latency in ns.
    pub total_ns: u64,
    /// Per-stage spans in pipeline order; durations sum to `total_ns`.
    pub spans: Vec<Span>,
}

impl Trace {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".to_owned(), Value::Number(self.id as f64)),
            ("label".to_owned(), Value::String(self.label.clone())),
            ("class".to_owned(), Value::String(self.class.clone())),
            ("total_ns".to_owned(), Value::Number(self.total_ns as f64)),
            (
                "spans".to_owned(),
                Value::Array(
                    self.spans
                        .iter()
                        .map(|s| {
                            Value::Object(vec![
                                ("stage".to_owned(), Value::String(s.stage.to_owned())),
                                ("start_ns".to_owned(), Value::Number(s.start_ns as f64)),
                                ("dur_ns".to_owned(), Value::Number(s.dur_ns as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A fixed-capacity ring retaining the slowest traces seen so far.
/// See the module docs for the admission fast path.
#[derive(Debug)]
pub struct SlowTraceRing {
    capacity: usize,
    /// Admission floor: totals at or below this are rejected without
    /// locking. 0 while the ring has room; `u64::MAX` when disabled.
    floor: AtomicU64,
    offered: AtomicU64,
    kept: AtomicU64,
    entries: Mutex<Vec<Trace>>,
}

impl SlowTraceRing {
    /// A ring keeping the `capacity` slowest traces (0 disables
    /// tracing entirely: every offer is rejected by the floor check).
    pub fn new(capacity: usize) -> SlowTraceRing {
        SlowTraceRing {
            capacity,
            floor: AtomicU64::new(if capacity == 0 { u64::MAX } else { 0 }),
            offered: AtomicU64::new(0),
            kept: AtomicU64::new(0),
            entries: Mutex::new(Vec::with_capacity(capacity)),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many completions were offered to the ring.
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// How many offers were admitted (slow enough at the time).
    pub fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }

    /// Offers a completion. `build` runs — and the trace is
    /// materialized — only if `total_ns` beats the current floor; the
    /// common fast request costs one relaxed load.
    pub fn offer_with(&self, total_ns: u64, build: impl FnOnce() -> Trace) {
        self.offered.fetch_add(1, Ordering::Relaxed);
        let floor = self.floor.load(Ordering::Relaxed);
        if floor > 0 && total_ns <= floor {
            return;
        }
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Re-check under the lock: the floor may have risen.
        if entries.len() == self.capacity {
            let (slowest_idx, min_total) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.total_ns)
                .map(|(i, t)| (i, t.total_ns))
                .expect("capacity > 0");
            if total_ns <= min_total {
                self.floor.store(min_total, Ordering::Relaxed);
                return;
            }
            entries.swap_remove(slowest_idx);
        }
        entries.push(build());
        self.kept.fetch_add(1, Ordering::Relaxed);
        if entries.len() == self.capacity {
            let min_total = entries.iter().map(|t| t.total_ns).min().expect("non-empty");
            self.floor.store(min_total, Ordering::Relaxed);
        }
    }

    /// The retained traces, slowest first (ties broken by trace id).
    pub fn snapshot(&self) -> Vec<Trace> {
        let mut traces = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        traces.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.id.cmp(&b.id)));
        traces
    }
}

/// Renders traces as a stable [`TRACE_FORMAT`] JSON document:
/// `{"format":"gmc-traces/1","count":N,"traces":[...]}`.
pub fn traces_json(traces: &[Trace]) -> String {
    let doc = Value::Object(vec![
        ("format".to_owned(), Value::String(TRACE_FORMAT.to_owned())),
        ("count".to_owned(), Value::Number(traces.len() as f64)),
        (
            "traces".to_owned(),
            Value::Array(traces.iter().map(Trace::to_value).collect()),
        ),
    ]);
    serde_json::to_string(&doc).expect("trace JSON is finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total_ns: u64) -> Trace {
        Trace {
            id,
            label: format!("t{id}"),
            class: "hit".to_owned(),
            total_ns,
            spans: vec![
                Span {
                    stage: "queue",
                    start_ns: 0,
                    dur_ns: total_ns / 2,
                },
                Span {
                    stage: "solve",
                    start_ns: total_ns / 2,
                    dur_ns: total_ns - total_ns / 2,
                },
            ],
        }
    }

    #[test]
    fn keeps_the_n_slowest() {
        let ring = SlowTraceRing::new(3);
        for (id, total) in [(1, 50), (2, 10), (3, 80), (4, 20), (5, 99), (6, 5)] {
            ring.offer_with(total, || trace(id, total));
        }
        let kept: Vec<(u64, u64)> = ring.snapshot().iter().map(|t| (t.id, t.total_ns)).collect();
        assert_eq!(kept, vec![(5, 99), (3, 80), (1, 50)]);
        assert_eq!(ring.offered(), 6);
        // id=6 (5ns) was floor-rejected once the ring filled.
        assert!(ring.kept() >= 3);
    }

    #[test]
    fn floor_rejects_without_building() {
        let ring = SlowTraceRing::new(2);
        ring.offer_with(100, || trace(1, 100));
        ring.offer_with(200, || trace(2, 200));
        // Ring full; floor is now 100. A 50ns offer must not build.
        ring.offer_with(50, || panic!("fast request materialized a trace"));
        assert_eq!(ring.snapshot().len(), 2);
    }

    #[test]
    fn capacity_zero_disables_tracing() {
        let ring = SlowTraceRing::new(0);
        ring.offer_with(u64::MAX - 1, || panic!("disabled ring built a trace"));
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.offered(), 1);
        assert_eq!(ring.kept(), 0);
    }

    #[test]
    fn json_is_stable() {
        let t = Trace {
            id: 7,
            label: "chain".to_owned(),
            class: "miss".to_owned(),
            total_ns: 12,
            spans: vec![Span {
                stage: "solve",
                start_ns: 2,
                dur_ns: 10,
            }],
        };
        assert_eq!(
            traces_json(&[t]),
            "{\"format\":\"gmc-traces/1\",\"count\":1,\"traces\":[{\"id\":7,\"label\":\"chain\",\"class\":\"miss\",\"total_ns\":12,\"spans\":[{\"stage\":\"solve\",\"start_ns\":2,\"dur_ns\":10}]}]}"
        );
    }
}
