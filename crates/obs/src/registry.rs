//! A registry of live metric instruments under stable dotted names.
//!
//! The [`MetricsRegistry`] hands out cheap [`Counter`], [`Gauge`] and
//! [`Histogram`] handles (each a clone of an `Arc`'d atomic or
//! histogram) keyed by `(family name, label values)`. Registering the
//! same name and labels twice returns a handle to the *same*
//! instrument, so layers can re-resolve instead of threading handles
//! around.
//!
//! Label sets are **bounded**: each family caps its distinct label
//! combinations ([`DEFAULT_SERIES_CAP`] by default). Once a family is
//! full, new label combinations all share one reserved overflow series
//! whose every label value is `"other"`, and the registry counts the
//! spill in its own `gmc.obs.label.overflow` counter — a hostile or
//! buggy client can never grow metrics memory without bound.
//!
//! Scrape with [`MetricsRegistry::render_into`], which copies every
//! live instrument into a [`crate::Exposition`].

use crate::histogram::LatencyHistogram;
use crate::prometheus::Exposition;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default cap on distinct label combinations per family.
pub const DEFAULT_SERIES_CAP: usize = 64;

/// Name of the registry's own overflow counter (spilled label sets).
pub const OVERFLOW_COUNTER: &str = "gmc.obs.label.overflow";

/// A monotone counter handle. Clones share the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle holding a `u64` (point-in-time value, may go down).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle. Clones share the underlying buckets.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<LatencyHistogram>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// A consistent point-in-time snapshot.
    pub fn snapshot(&self) -> crate::HistogramSnapshot {
        self.0.snapshot()
    }
}

/// One live instrument (the registry's internal storage).
#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A family of series sharing a name, help text, kind and label names.
#[derive(Debug)]
struct Family {
    help: String,
    kind: &'static str,
    label_names: Vec<String>,
    series: BTreeMap<Vec<String>, Instrument>,
    /// The shared spill series once `series` is at capacity.
    overflow: Option<Instrument>,
    cap: usize,
}

/// A thread-safe registry of live metric instruments. See the module
/// docs for the bounded-label-set semantics.
#[derive(Debug)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
    spilled: Counter,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            families: RwLock::new(BTreeMap::new()),
            spilled: Counter::default(),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or re-resolves) a counter series.
    ///
    /// # Panics
    /// If `name` already exists with a different kind or label names —
    /// that is a programming error, not an input error.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.instrument(name, help, labels, || {
            Instrument::Counter(Counter::default())
        }) {
            Instrument::Counter(c) => c,
            other => panic!("metric {name} is a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or re-resolves) a gauge series. Panics on a kind or
    /// label-name mismatch, like [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.instrument(name, help, labels, || Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            other => panic!("metric {name} is a {}, not a gauge", other.kind()),
        }
    }

    /// Registers (or re-resolves) a histogram series. Panics on a kind
    /// or label-name mismatch, like [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.instrument(name, help, labels, || {
            Instrument::Histogram(Histogram::default())
        }) {
            Instrument::Histogram(h) => h,
            other => panic!("metric {name} is a {}, not a histogram", other.kind()),
        }
    }

    /// Total label combinations spilled into `other` series so far.
    pub fn spilled(&self) -> u64 {
        self.spilled.get()
    }

    fn instrument(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl Fn() -> Instrument,
    ) -> Instrument {
        let label_names: Vec<String> = labels.iter().map(|(k, _)| (*k).to_owned()).collect();
        let values: Vec<String> = labels.iter().map(|(_, v)| (*v).to_owned()).collect();
        let mut families = write_lock(&self.families);
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind: make().kind(),
            label_names: label_names.clone(),
            series: BTreeMap::new(),
            overflow: None,
            cap: DEFAULT_SERIES_CAP,
        });
        assert_eq!(
            family.kind,
            make().kind(),
            "metric {name} registered with two kinds"
        );
        assert_eq!(
            family.label_names, label_names,
            "metric {name} registered with two label-name sets"
        );
        if let Some(existing) = family.series.get(&values) {
            return existing.clone();
        }
        if family.series.len() >= family.cap {
            self.spilled.inc();
            return family.overflow.get_or_insert_with(make).clone();
        }
        family.series.entry(values).or_insert_with(make).clone()
    }

    /// Copies every live instrument (and the registry's own overflow
    /// counter, when nonzero) into `expo`.
    pub fn render_into(&self, expo: &mut Exposition) {
        let families = read_lock(&self.families);
        for (name, family) in families.iter() {
            let emit = |expo: &mut Exposition, values: &[String], instrument: &Instrument| {
                let labels: Vec<(&str, &str)> = family
                    .label_names
                    .iter()
                    .map(String::as_str)
                    .zip(values.iter().map(String::as_str))
                    .collect();
                match instrument {
                    Instrument::Counter(c) => {
                        expo.add_counter(name, &family.help, &labels, c.get())
                    }
                    Instrument::Gauge(g) => {
                        expo.add_gauge(name, &family.help, &labels, g.get() as f64)
                    }
                    Instrument::Histogram(h) => {
                        expo.add_histogram(name, &family.help, &labels, h.snapshot())
                    }
                }
            };
            for (values, instrument) in &family.series {
                emit(expo, values, instrument);
            }
            if let Some(overflow) = &family.overflow {
                let values: Vec<String> = family
                    .label_names
                    .iter()
                    .map(|_| "other".to_owned())
                    .collect();
                emit(expo, &values, overflow);
            }
        }
        drop(families);
        if self.spilled.get() > 0 {
            expo.add_counter(
                OVERFLOW_COUNTER,
                "Label combinations spilled into shared `other` series",
                &[],
                self.spilled.get(),
            );
        }
    }
}

/// Read-locks, recovering from poisoning (metric state stays valid
/// even if a panicking thread held the lock).
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write-locks, recovering from poisoning.
fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_an_instrument() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("req.total", "requests", &[("class", "hit")]);
        let b = reg.counter("req.total", "requests", &[("class", "hit")]);
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        let other = reg.counter("req.total", "requests", &[("class", "miss")]);
        other.inc();
        assert_eq!(other.get(), 1);
        assert_eq!(a.get(), 7);
    }

    #[test]
    fn label_sets_are_bounded_with_shared_overflow() {
        let reg = MetricsRegistry::new();
        let mut handles = Vec::new();
        for i in 0..(DEFAULT_SERIES_CAP + 10) {
            handles.push(reg.counter("c.total", "c", &[("k", &format!("v{i}"))]));
        }
        for h in &handles {
            h.inc();
        }
        // The 10 spilled registrations share one instrument.
        assert_eq!(handles[DEFAULT_SERIES_CAP].get(), 10);
        assert_eq!(reg.spilled(), 10);
        let mut expo = Exposition::new();
        reg.render_into(&mut expo);
        let text = expo.render();
        assert!(text.contains("c_total{k=\"other\"} 10"), "{text}");
        assert!(text.contains("gmc_obs_label_overflow 10"), "{text}");
    }

    #[test]
    #[should_panic(expected = "registered with two kinds")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", "x", &[]);
        let _ = reg.gauge("x", "x", &[]);
    }

    #[test]
    #[should_panic(expected = "two label-name sets")]
    fn label_name_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", "x", &[("a", "1")]);
        let _ = reg.counter("x", "x", &[("b", "1")]);
    }

    #[test]
    fn render_covers_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("a.count", "a", &[]).add(5);
        reg.gauge("b.level", "b", &[]).set(9);
        reg.histogram("c.ns", "c", &[("stage", "solve")]).record(42);
        let mut expo = Exposition::new();
        reg.render_into(&mut expo);
        let text = expo.render();
        assert!(text.contains("a_count 5"), "{text}");
        assert!(text.contains("b_level 9"), "{text}");
        assert!(text.contains("c_ns_count{stage=\"solve\"} 1"), "{text}");
        assert!(text.contains("c_ns_sum{stage=\"solve\"} 42"), "{text}");
    }
}
