//! Fixed-bucket log-linear latency histograms, std-only and lock-free.
//!
//! A [`LatencyHistogram`] covers the full `u64` nanosecond range with
//! a fixed number of buckets: values below 16 ns get exact unit
//! buckets, and every power-of-two octave above that is split into 16
//! linear sub-buckets, so the relative bucket width is at most ~6%
//! everywhere (the same layout HDR-style recorders use). Recording is
//! one index computation plus two relaxed atomic adds and a
//! `fetch_max` — cheap enough to sit on the serving hot path — and any
//! number of threads may record concurrently.
//!
//! Quantiles are answered from a [`HistogramSnapshot`], reporting the
//! *upper bound* of the bucket containing the requested rank, so
//! `p99 <= reported` always holds at bucket resolution.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave is split into `2^LINEAR_BITS`
/// linear buckets.
const LINEAR_BITS: u32 = 4;

/// Sub-buckets per octave (and the number of exact unit buckets at the
/// bottom of the range).
const SUB: usize = 1 << LINEAR_BITS;

/// Total bucket count covering every `u64` value: 16 unit buckets plus
/// 16 sub-buckets for each octave `[2^e, 2^(e+1))`, `e` in `4..=63`.
const BUCKETS: usize = SUB + (64 - LINEAR_BITS as usize) * SUB;

/// The bucket index of `value` (total order preserved across buckets).
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros(); // >= LINEAR_BITS
        let sub = (value >> (exp - LINEAR_BITS)) as usize & (SUB - 1);
        SUB * (exp - LINEAR_BITS) as usize + SUB + sub
    }
}

/// The largest value mapping to bucket `index` (inclusive upper bound).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let group = (index - SUB) / SUB;
        let sub = ((index - SUB) % SUB) as u64;
        let exp = group as u32 + LINEAR_BITS;
        let low = (SUB as u64 + sub) << (exp - LINEAR_BITS);
        let width = 1u64 << (exp - LINEAR_BITS);
        low + (width - 1)
    }
}

/// A concurrent fixed-bucket log-linear histogram of `u64` samples
/// (nanoseconds, by convention).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    max: AtomicU64,
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Lock-free; safe from any number of threads.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. The total is derived
    /// from the copied buckets (not a separately raced counter), so a
    /// snapshot is always internally consistent: `count()` equals the
    /// sum of its own `buckets()`.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u32, c));
                count += c;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            max: self.max.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`]: sparse non-empty
/// buckets in index order plus the derived total.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty `(bucket index, count)` pairs, ascending by index.
    buckets: Vec<(u32, u64)>,
    count: u64,
    max: u64,
    sum: u64,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether any sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest recorded sample (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The mean of the recorded samples (0 if empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The sum of the recorded samples (exact, unlike quantiles).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `q`-quantile (`0.0..=1.0`), reported as the inclusive upper
    /// bound of the bucket holding that rank — so the true quantile is
    /// never above the reported value by more than the bucket width
    /// (~6%). Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(index, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                // The top bucket's upper bound can exceed the true
                // maximum by the bucket width; clamp to the exact max.
                return bucket_upper(index as usize).min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(inclusive upper bound, count)` pairs,
    /// in strictly increasing bound order.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|&(i, c)| (bucket_upper(i as usize), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let probes: Vec<u64> = (0..200)
            .chain((0..54).flat_map(|e| {
                let v = 1u64 << (e + 4);
                [v - 1, v, v + 1, v + v / 3]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            assert!(
                bucket_index(w[0]) <= bucket_index(w[1]),
                "index order broken at {} vs {}",
                w[0],
                w[1]
            );
        }
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i < BUCKETS);
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "value {v} below its bucket");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 16);
        assert_eq!(s.max(), 15);
        assert_eq!(s.quantile(1.0), 15);
        assert_eq!(s.buckets().count(), 16);
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs..1ms in µs steps
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((500_000..=531_250).contains(&p50), "p50 = {p50}");
        assert!((990_000..=1_062_500).contains(&p99), "p99 = {p99}");
        assert_eq!(s.quantile(1.0), s.max());
        // Bucket bounds are strictly increasing and counts total.
        let mut last = None;
        let mut total = 0;
        for (upper, c) in s.buckets() {
            if let Some(prev) = last {
                assert!(upper > prev);
            }
            last = Some(upper);
            total += c;
        }
        assert_eq!(total, s.count());
    }

    #[test]
    fn snapshot_totals_derive_from_buckets() {
        let h = LatencyHistogram::new();
        for i in 0..500u64 {
            h.record(i * 37 % 100_000);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets().map(|(_, c)| c).sum::<u64>(), s.count());
        assert_eq!(s.count(), 500);
    }
}
