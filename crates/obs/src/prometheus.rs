//! The Prometheus text-format renderer.
//!
//! An [`Exposition`] accumulates metric families — counters, gauges
//! and histograms — and renders them as one Prometheus text exposition:
//!
//! * families sorted by name, each preceded by exactly one `# HELP`
//!   and one `# TYPE` line;
//! * series within a family sorted by their label values, each label
//!   set itself sorted by label name;
//! * label values escaped (`\\`, `\"`, `\n`), help text escaped
//!   (`\\`, `\n`);
//! * dotted registration names (`gmc.serve.batches`) mapped onto the
//!   Prometheus name charset (`gmc_serve_batches`);
//! * histograms rendered as cumulative `_bucket{le="..."}` series over
//!   the snapshot's non-empty buckets plus `le="+Inf"`, with `_sum`
//!   and `_count`.
//!
//! The builder is deliberately decoupled from the live
//! [`crate::MetricsRegistry`]: layers that already keep authoritative
//! counters elsewhere (seqlock cells, cache shards) append snapshot
//! values at scrape time instead of double-writing them on the hot
//! path.

use crate::histogram::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What a family's series hold.
#[derive(Clone, Debug)]
enum SeriesValue {
    /// A monotone counter (rendered as an integer).
    Counter(u64),
    /// A point-in-time gauge.
    Gauge(f64),
    /// A histogram snapshot (expanded at render time).
    Histogram(HistogramSnapshot),
}

impl SeriesValue {
    fn type_name(&self) -> &'static str {
        match self {
            SeriesValue::Counter(_) => "counter",
            SeriesValue::Gauge(_) => "gauge",
            SeriesValue::Histogram(_) => "histogram",
        }
    }
}

/// One metric family: help text plus its series keyed by sorted label
/// pairs.
#[derive(Clone, Debug)]
struct Family {
    help: String,
    series: BTreeMap<Vec<(String, String)>, SeriesValue>,
}

/// A Prometheus text exposition under construction. See the module
/// docs for the output guarantees.
#[derive(Clone, Debug, Default)]
pub struct Exposition {
    families: BTreeMap<String, Family>,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Adds (or replaces) one counter series. `labels` are
    /// `(name, value)` pairs; an empty slice is the unlabeled series.
    pub fn add_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.add(name, help, labels, SeriesValue::Counter(value));
    }

    /// Adds (or replaces) one gauge series. Non-finite values are
    /// clamped to 0 so the exposition always parses.
    pub fn add_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        self.add(name, help, labels, SeriesValue::Gauge(value));
    }

    /// Adds (or replaces) one histogram series from a snapshot.
    pub fn add_histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snapshot: HistogramSnapshot,
    ) {
        self.add(name, help, labels, SeriesValue::Histogram(snapshot));
    }

    fn add(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: SeriesValue) {
        let name = sanitize_name(name);
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (sanitize_label_name(k), (*v).to_owned()))
            .collect();
        key.sort();
        let family = self.families.entry(name).or_insert_with(|| Family {
            help: help.to_owned(),
            series: BTreeMap::new(),
        });
        debug_assert_eq!(
            family
                .series
                .values()
                .next()
                .map_or_else(|| value.type_name(), SeriesValue::type_name),
            value.type_name(),
            "one family, one metric type"
        );
        family.series.insert(key, value);
    }

    /// Renders the Prometheus text exposition (trailing newline
    /// included).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, family) in &self.families {
            let kind = family
                .series
                .values()
                .next()
                .map_or("gauge", SeriesValue::type_name);
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, value) in &family.series {
                match value {
                    SeriesValue::Counter(v) => {
                        let _ = writeln!(out, "{name}{} {v}", render_labels(labels, None));
                    }
                    SeriesValue::Gauge(v) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            render_labels(labels, None),
                            format_f64(*v)
                        );
                    }
                    SeriesValue::Histogram(snapshot) => {
                        let mut cumulative = 0u64;
                        for (upper, count) in snapshot.buckets() {
                            cumulative += count;
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cumulative}",
                                render_labels(labels, Some(&upper.to_string()))
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {}",
                            render_labels(labels, Some("+Inf")),
                            snapshot.count()
                        );
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            render_labels(labels, None),
                            snapshot.sum()
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            render_labels(labels, None),
                            snapshot.count()
                        );
                    }
                }
            }
        }
        out
    }
}

/// Maps a dotted registration name onto the Prometheus metric-name
/// charset `[a-zA-Z_:][a-zA-Z0-9_:]*`: every other character becomes
/// `_`, and a leading digit (or empty name) gains a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Label names allow the same charset minus `:`.
fn sanitize_label_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value: backslash, double quote, newline.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes help text: backslash and newline (quotes stay literal).
fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{a="x",le="15"}` (or nothing for an unlabeled series
/// without `le`).
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Renders a gauge value: integers without a fraction, everything else
/// via the shortest round-trip float (`{}` on `f64`).
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        (v as i64).to_string()
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::LatencyHistogram;

    #[test]
    fn renders_sorted_families_with_headers() {
        let mut expo = Exposition::new();
        expo.add_counter("zz.last", "the last family", &[], 7);
        expo.add_counter("aa.first", "the first family", &[("x", "2")], 1);
        expo.add_counter("aa.first", "the first family", &[("x", "1")], 3);
        let text = expo.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# HELP aa_first the first family");
        assert_eq!(lines[1], "# TYPE aa_first counter");
        assert_eq!(lines[2], "aa_first{x=\"1\"} 3");
        assert_eq!(lines[3], "aa_first{x=\"2\"} 1");
        assert_eq!(lines[4], "# HELP zz_last the last family");
        assert_eq!(lines[6], "zz_last 7");
    }

    #[test]
    fn escapes_label_values_and_help() {
        let mut expo = Exposition::new();
        expo.add_gauge("g", "line\nbreak \\ slash", &[("v", "a\"b\\c\nd")], 1.5);
        let text = expo.render();
        assert!(text.contains("# HELP g line\\nbreak \\\\ slash"), "{text}");
        assert!(text.contains("g{v=\"a\\\"b\\\\c\\nd\"} 1.5"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let h = LatencyHistogram::new();
        for v in [3u64, 3, 100, 5000] {
            h.record(v);
        }
        let mut expo = Exposition::new();
        expo.add_histogram("lat.ns", "latency", &[("stage", "solve")], h.snapshot());
        let text = expo.render();
        assert!(text.contains("# TYPE lat_ns histogram"), "{text}");
        assert!(
            text.contains("lat_ns_bucket{stage=\"solve\",le=\"3\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("lat_ns_bucket{stage=\"solve\",le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("lat_ns_count{stage=\"solve\"} 4"), "{text}");
        assert!(text.contains("lat_ns_sum{stage=\"solve\"} 5106"), "{text}");
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "{line}");
            last = count;
        }
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(
            sanitize_name("gmc.serve.stage.latency.ns"),
            "gmc_serve_stage_latency_ns"
        );
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }
}
