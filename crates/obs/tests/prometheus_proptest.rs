//! Property tests for the Prometheus text renderer: for arbitrary
//! mixes of counter/gauge/histogram series with hostile label values,
//! the rendered exposition must be well-formed — exactly one
//! `# HELP`/`# TYPE` pair per family, families and series sorted,
//! unique series, label values escaped so they parse back, histogram
//! buckets cumulative and monotone, and `_count`/`_sum` matching the
//! recorded samples exactly.

use gmc_obs::histogram::LatencyHistogram;
use gmc_obs::prometheus::{sanitize_name, Exposition};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A series key: (family name, labels without `le`).
type SeriesKey = (String, Vec<(String, String)>);
/// Accumulated histogram state: (cumulative buckets, sum, count).
type HistState = (Vec<u64>, Option<u64>, Option<u64>);

/// What each pool family is (index, raw name, kind, label names).
/// Raw names exercise sanitization: dots, spaces, slashes, a leading
/// digit. Sanitized names stay distinct.
const KIND_COUNTER: usize = 0;
const KIND_GAUGE: usize = 1;
const KIND_HISTOGRAM: usize = 2;

fn pool() -> Vec<(&'static str, usize, Vec<&'static str>)> {
    vec![
        ("gmc.serve.requests.served", KIND_COUNTER, vec!["class"]),
        ("9shards.in use", KIND_GAUGE, vec!["shard", "mode"]),
        ("gmc.cache.hits", KIND_COUNTER, vec![]),
        ("gmc.serve.stage.latency.ns", KIND_HISTOGRAM, vec!["stage"]),
        ("weird/family-name", KIND_HISTOGRAM, vec![]),
        ("gmc.obs.level", KIND_GAUGE, vec!["k"]),
    ]
}

/// Label values mixing escapes (quote, backslash, newline), commas,
/// equals signs, non-ASCII, and a random plain suffix.
fn label_value() -> impl Strategy<Value = String> {
    (
        prop::sample::select(vec![
            "",
            "plain",
            "has\"quote",
            "back\\slash",
            "new\nline",
            "a,b=c{d}",
            "\\n literal",
            "ünïcode",
        ]),
        "[a-z]{0,3}",
    )
        .prop_map(|(prefix, suffix)| format!("{prefix}{suffix}"))
}

/// One generated series: pool family index, two label values (as many
/// as the family needs are used), histogram samples, gauge value.
fn series() -> impl Strategy<Value = (usize, String, String, Vec<u64>, f64)> {
    (
        0usize..6,
        label_value(),
        label_value(),
        prop::collection::vec(0u64..2_000_000_000, 0..12),
        -1.0e9f64..1.0e9,
    )
}

/// The expected value of one rendered series.
#[derive(Clone, Debug, PartialEq)]
enum Expected {
    Counter(u64),
    Gauge(f64),
    /// (sample count, sample sum)
    Histogram(u64, u64),
}

/// Splits `name{a="x",b="y"} 42` into (metric name, labels, value),
/// parsing label values with escape handling. Panics (failing the
/// property) on any malformed line.
fn parse_sample(line: &str) -> (String, Vec<(String, String)>, String) {
    let (head, value) = line.rsplit_once(' ').expect("sample line has a value");
    if let Some(brace) = head.find('{') {
        let name = head[..brace].to_owned();
        let body = &head[brace + 1..];
        assert!(body.ends_with('}'), "unterminated label set: {line}");
        let body = &body[..body.len() - 1];
        let mut labels = Vec::new();
        let mut chars = body.chars().peekable();
        loop {
            let mut key = String::new();
            for c in chars.by_ref() {
                if c == '=' {
                    break;
                }
                key.push(c);
            }
            assert!(!key.is_empty(), "empty label name: {line}");
            assert_eq!(chars.next(), Some('"'), "label value not quoted: {line}");
            let mut val = String::new();
            loop {
                match chars.next().expect("unterminated label value") {
                    '\\' => match chars.next().expect("dangling escape") {
                        '\\' => val.push('\\'),
                        '"' => val.push('"'),
                        'n' => val.push('\n'),
                        c => panic!("invalid escape \\{c} in {line}"),
                    },
                    '"' => break,
                    '\n' => panic!("raw newline inside label value: {line}"),
                    c => val.push(c),
                }
            }
            labels.push((key, val));
            match chars.next() {
                None => break,
                Some(',') => continue,
                Some(c) => panic!("unexpected {c:?} after label value: {line}"),
            }
        }
        (name, labels, value.to_owned())
    } else {
        (head.to_owned(), Vec::new(), value.to_owned())
    }
}

fn is_valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && !name.as_bytes()[0].is_ascii_digit()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Strips a histogram suffix, returning the family name.
fn family_of(metric: &str, families: &BTreeMap<String, (usize, Vec<String>)>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = metric.strip_suffix(suffix) {
            if matches!(families.get(base), Some((KIND_HISTOGRAM, _))) {
                return base.to_owned();
            }
        }
    }
    metric.to_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// See the file docs: one HELP/TYPE pair per family, sorted unique
    /// series, parseable escapes, consistent histograms.
    #[test]
    fn rendered_exposition_is_well_formed(entries in prop::collection::vec(series(), 0..24)) {
        let pool = pool();
        let mut expo = Exposition::new();
        // families: sanitized name -> (kind, label names); expected:
        // (family, sorted label pairs) -> value. Mimics the renderer's
        // replace-on-same-key semantics via map insertion.
        let mut families: BTreeMap<String, (usize, Vec<String>)> = BTreeMap::new();
        let mut expected: BTreeMap<(String, Vec<(String, String)>), Expected> = BTreeMap::new();

        for (idx, v1, v2, samples, gauge) in &entries {
            let (raw, kind, label_names) = &pool[*idx];
            let values = [v1.as_str(), v2.as_str()];
            let labels: Vec<(&str, &str)> = label_names
                .iter()
                .zip(values.iter())
                .map(|(k, v)| (*k, *v))
                .collect();
            let name = sanitize_name(raw);
            let mut key: Vec<(String, String)> = labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect();
            key.sort();
            families.insert(name.clone(), (*kind, label_names.iter().map(|s| (*s).to_owned()).collect()));
            match *kind {
                KIND_COUNTER => {
                    let total = samples.iter().sum::<u64>();
                    expo.add_counter(raw, "help text", &labels, total);
                    expected.insert((name, key), Expected::Counter(total));
                }
                KIND_GAUGE => {
                    expo.add_gauge(raw, "help text", &labels, *gauge);
                    expected.insert((name, key), Expected::Gauge(*gauge));
                }
                _ => {
                    let h = LatencyHistogram::new();
                    for &s in samples {
                        h.record(s);
                    }
                    expo.add_histogram(raw, "help text", &labels, h.snapshot());
                    expected.insert(
                        (name, key),
                        Expected::Histogram(samples.len() as u64, samples.iter().sum()),
                    );
                }
            }
        }

        let text = expo.render();

        // -- structural walk -------------------------------------------------
        let mut seen_families: Vec<String> = Vec::new();
        let mut seen_series: Vec<(String, Vec<(String, String)>)> = Vec::new();
        // (family, labels-without-le) -> (cumulative buckets, sum, count)
        let mut hist: BTreeMap<SeriesKey, HistState> = BTreeMap::new();
        let mut current: Option<String> = None;
        let mut lines = text.lines().peekable();
        while let Some(line) = lines.next() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap().to_owned();
                prop_assert!(is_valid_metric_name(&name), "bad family name {name:?}");
                if let Some(prev) = seen_families.last() {
                    prop_assert!(
                        *prev < name,
                        "families out of order: {prev} then {name}"
                    );
                }
                prop_assert!(!rest[name.len()..].contains('\n'));
                let type_line = lines.next().expect("HELP must be followed by TYPE");
                let expected_kind = match families[&name].0 {
                    KIND_COUNTER => "counter",
                    KIND_GAUGE => "gauge",
                    _ => "histogram",
                };
                prop_assert_eq!(
                    type_line,
                    format!("# TYPE {name} {expected_kind}"),
                    "bad TYPE line for {}", name
                );
                seen_families.push(name.clone());
                current = Some(name);
                continue;
            }
            prop_assert!(!line.starts_with('#'), "unexpected comment {line:?}");
            let family = current.clone().expect("sample before any family header");
            let (metric, labels, value) = parse_sample(line);
            prop_assert!(is_valid_metric_name(&metric), "bad metric name {metric:?}");
            prop_assert_eq!(
                family_of(&metric, &families),
                family.clone(),
                "sample {} under wrong family", line
            );
            let (kind, label_names) = families[&family].clone();
            let without_le: Vec<(String, String)> =
                labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            // Label names match the registration (sorted), minus `le`.
            let mut expected_names = label_names.clone();
            expected_names.sort();
            let got_names: Vec<String> = without_le.iter().map(|(k, _)| k.clone()).collect();
            prop_assert_eq!(got_names, expected_names, "label names for {}", line);

            match kind {
                KIND_COUNTER => {
                    let got: u64 = value.parse().expect("counter value");
                    prop_assert_eq!(
                        Some(&Expected::Counter(got)),
                        expected.get(&(family.clone(), without_le.clone())),
                        "counter mismatch at {}", line
                    );
                    seen_series.push((family, without_le));
                }
                KIND_GAUGE => {
                    let got: f64 = value.parse().expect("gauge value");
                    match expected.get(&(family.clone(), without_le.clone())) {
                        Some(Expected::Gauge(want)) => prop_assert!(
                            (got - want).abs() <= want.abs() * 1e-12,
                            "gauge mismatch at {line}: got {got}, want {want}"
                        ),
                        other => panic!("unexpected gauge series {line}: {other:?}"),
                    }
                    seen_series.push((family, without_le));
                }
                _ => {
                    let entry = hist
                        .entry((family.clone(), without_le.clone()))
                        .or_insert_with(|| (Vec::new(), None, None));
                    if metric.ends_with("_bucket") {
                        let le = labels
                            .iter()
                            .find(|(k, _)| k == "le")
                            .map(|(_, v)| v.clone())
                            .expect("bucket line has le");
                        prop_assert!(
                            le == "+Inf" || le.parse::<u64>().is_ok(),
                            "bad le {le:?} in {line}"
                        );
                        entry.0.push(value.parse().expect("bucket count"));
                    } else if metric.ends_with("_sum") {
                        prop_assert!(entry.1.is_none(), "duplicate _sum for {line}");
                        entry.1 = Some(value.parse().expect("sum value"));
                    } else {
                        prop_assert!(entry.2.is_none(), "duplicate _count for {line}");
                        entry.2 = Some(value.parse().expect("count value"));
                        seen_series.push((family, without_le));
                    }
                }
            }
        }

        // -- uniqueness, sortedness, completeness ----------------------------
        for w in seen_series.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "series out of order: {w:?}");
            }
        }
        let mut unique = seen_series.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(unique.len(), seen_series.len(), "duplicate series");
        prop_assert_eq!(seen_series.len(), expected.len(), "series missing from render");

        // -- histogram invariants ---------------------------------------------
        for ((family, labels), (buckets, sum, count)) in &hist {
            let want = expected
                .get(&(family.clone(), labels.clone()))
                .expect("histogram series not registered");
            let (want_count, want_sum) = match want {
                Expected::Histogram(c, s) => (*c, *s),
                other => panic!("kind confusion for {family}: {other:?}"),
            };
            for w in buckets.windows(2) {
                prop_assert!(w[0] <= w[1], "buckets not monotone in {family}: {buckets:?}");
            }
            prop_assert_eq!(buckets.last().copied(), Some(want_count), "last bucket != count in {}", family);
            prop_assert_eq!(sum.to_owned(), Some(want_sum), "sum mismatch in {}", family);
            prop_assert_eq!(count.to_owned(), Some(want_count), "count mismatch in {}", family);
        }
    }
}
