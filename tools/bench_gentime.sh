#!/usr/bin/env bash
# Regenerates the tracked generation-time benchmark numbers in
# BENCH_gentime.json (median seconds per solve by chain length; see
# README § Performance).
#
#   tools/bench_gentime.sh              # full run
#   tools/bench_gentime.sh --quick      # CI smoke: few samples
#   tools/bench_gentime.sh --out /tmp/b.json
#
# The "before" slot drives the retained pre-refactor implementation
# (gmc::reference::solve_reference) and the "after" slot the
# allocation-free hot path, interleaved in one process, so the
# recorded speedups are robust to machine-condition drift. The
# "plan_cache" group tracks the symbolic pipeline: cold symbolic solve
# vs cached instantiate at fresh sizes in the same region. The
# "serve_throughput" group drives the gmc-serve front door (dispatcher
# + worker pool + shared concurrent cache) at 1/2/4/8 workers over a
# hit-ratio sweep, recording requests/second, scaling vs 1 worker and
# the host's available parallelism. The "replay_latency" group replays
# seeded workload presets and reports serve-side latency quantiles.
# The "obs_overhead" group compares the bare cache-hit path against
# the fully instrumented one (per-stage histogram records + slow-trace
# ring offer per request) against a 5% budget.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo run --release -p gmc-bench --bin gentime_json -- "$@"
