//! Tests pinning the documented evaluation semantics of the baseline
//! strategies (paper Sec. 4).

use gmc_baselines::{
    all_strategies, Strategy, ARMADILLO_NAIVE, BLAZE_NAIVE, EIGEN_RECOMMENDED, JULIA_NAIVE,
    JULIA_RECOMMENDED, MATLAB_NAIVE,
};
use gmc_expr::{Chain, Factor, Operand, OperandKind, Property};
use gmc_kernels::{KernelFamily, KernelOp};

fn plain_chain(dims: &[(usize, usize)]) -> Chain {
    let factors = dims
        .iter()
        .enumerate()
        .map(|(i, &(r, c))| Factor::plain(Operand::matrix(format!("M{i}"), r, c)))
        .collect();
    Chain::new(factors).unwrap()
}

/// Armadillo's heuristic never produces the split `(AB)(CD)` — that
/// parenthesization requires multiplying two computed temporaries,
/// which the ≤4-term size heuristic structurally cannot emit (paper
/// Sec. 4).
#[test]
fn armadillo_never_multiplies_two_temporaries() {
    // Probe many shapes, including ones where (AB)(CD) would be optimal.
    let shape_sets: Vec<Vec<(usize, usize)>> = vec![
        vec![(30, 10), (10, 40), (40, 10), (10, 35)],
        vec![(100, 5), (5, 100), (100, 5), (5, 100)],
        vec![(7, 7), (7, 7), (7, 7), (7, 7), (7, 7), (7, 7), (7, 7)],
        vec![(50, 1), (1, 50), (50, 50), (50, 20)],
    ];
    for dims in shape_sets {
        let chain = plain_chain(&dims);
        let program = ARMADILLO_NAIVE.compile(&chain);
        for instr in program.instructions() {
            let both_temps = instr
                .op()
                .operands()
                .iter()
                .all(|o| o.kind() == OperandKind::Temporary);
            assert!(
                !both_temps,
                "Armadillo multiplied two temporaries on {chain}: {instr}"
            );
        }
    }
}

/// Armadillo's 3-term rule: `(AB)C` iff `size(AB) <= size(BC)`.
#[test]
fn armadillo_three_term_rule_both_branches() {
    // size(AB) = 4 <= size(BC) = 10000 → (AB)C.
    let chain = plain_chain(&[(2, 100), (100, 2), (2, 5000)]);
    let program = ARMADILLO_NAIVE.compile(&chain);
    match program.instructions()[0].op() {
        KernelOp::Gemm { a, b, .. } => {
            assert_eq!((a.name(), b.name()), ("M0", "M1"));
        }
        other => panic!("unexpected {other}"),
    }
    // size(AB) = 10000 > size(BC) = 4 → A(BC).
    let chain = plain_chain(&[(5000, 2), (2, 100), (100, 2)]);
    let program = ARMADILLO_NAIVE.compile(&chain);
    match program.instructions()[0].op() {
        KernelOp::Gemm { a, b, .. } => {
            assert_eq!((a.name(), b.name()), ("M1", "M2"));
        }
        other => panic!("unexpected {other}"),
    }
}

/// Long chains are chunked deterministically from the left: each chunk's
/// result participates in the next chunk ("Every binary product uses the
/// result of the previous one", paper Sec. 4).
#[test]
fn armadillo_long_chain_cache_friendly_shape() {
    let chain = plain_chain(&[(8, 8); 9]);
    let program = ARMADILLO_NAIVE.compile(&chain);
    assert_eq!(program.len(), 8);
    // After the first chunk, every product must involve at least one
    // temporary (the running accumulator).
    for instr in program.instructions().iter().skip(3) {
        let any_temp = instr
            .op()
            .operands()
            .iter()
            .any(|o| o.kind() == OperandKind::Temporary);
        assert!(any_temp, "{instr} does not reuse the accumulator");
    }
}

/// Blaze evaluates `A·B·v` as `A(Bv)` (paper Sec. 4) while plain
/// left-to-right libraries compute `(AB)v`.
#[test]
fn blaze_vector_rule_vs_left_to_right() {
    let a = Operand::matrix("A", 80, 90);
    let b = Operand::matrix("B", 90, 70);
    let v = Operand::col_vector("v", 70);
    let chain = Chain::new(vec![Factor::plain(a), Factor::plain(b), Factor::plain(v)]).unwrap();
    let blaze = BLAZE_NAIVE.compile(&chain);
    assert!(blaze
        .instructions()
        .iter()
        .all(|i| i.op().family() == KernelFamily::Gemv));
    let julia = JULIA_NAIVE.compile(&chain);
    assert_eq!(julia.instructions()[0].op().family(), KernelFamily::Gemm);
    assert!(blaze.flops() < julia.flops());
}

/// The recommended variants never invert explicitly when a solve
/// suffices; the naive ones always invert.
#[test]
fn naive_inverts_recommended_solves() {
    let a = Operand::square("A", 50).with_property(Property::SymmetricPositiveDefinite);
    let b = Operand::matrix("B", 50, 10);
    let chain = Chain::new(vec![Factor::inverted(a), Factor::plain(b)]).unwrap();
    for s in all_strategies() {
        let program = s.compile(&chain);
        let has_inv = program
            .instructions()
            .iter()
            .any(|i| i.op().family() == KernelFamily::Inv);
        let has_solve = program.instructions().iter().any(|i| {
            matches!(
                i.op().family(),
                KernelFamily::Gesv | KernelFamily::Posv | KernelFamily::Trsm | KernelFamily::Trsv
            )
        });
        if s.id().ends_with("naive") {
            assert!(has_inv, "{} should invert explicitly", s.id());
        } else {
            assert!(has_solve && !has_inv, "{} should solve", s.id());
        }
    }
}

/// Matlab's untyped products ignore declared structure; typed libraries
/// exploit it (paper Sec. 4: Julia types, Eigen views, Blaze adaptors).
#[test]
fn matlab_products_are_untyped() {
    let l = Operand::square("L", 40).with_property(Property::LowerTriangular);
    let b = Operand::matrix("B", 40, 10);
    let chain = Chain::new(vec![Factor::plain(l), Factor::plain(b)]).unwrap();
    let matlab = MATLAB_NAIVE.compile(&chain);
    assert_eq!(matlab.instructions()[0].op().family(), KernelFamily::Gemm);
    let julia = JULIA_NAIVE.compile(&chain);
    assert_eq!(julia.instructions()[0].op().family(), KernelFamily::Trmm);
    assert!(julia.flops() < matlab.flops());
}

/// Eigen's recommended implementation binds `.solve()` to the factor
/// following the inverse — reproducing the paper's observation that for
/// `M1 M2⁻¹ v1 v2ᵀ` it accidentally finds a good parenthesization.
#[test]
fn eigen_solve_binds_following_factor() {
    let m1 = Operand::square("M1", 60);
    let m2 = Operand::square("M2", 60);
    let v1 = Operand::col_vector("v1", 60);
    let v2 = Operand::col_vector("v2", 40);
    let chain = Chain::new(vec![
        Factor::plain(m1),
        Factor::inverted(m2),
        Factor::plain(v1),
        Factor::transposed(v2),
    ])
    .unwrap();
    let program = EIGEN_RECOMMENDED.compile(&chain);
    // M1·(M2⁻¹ applied via solve)…: the solve must come before any
    // product with M1, and the final op is the outer product.
    assert_eq!(program.instructions()[0].op().family(), KernelFamily::Gesv);
    assert_eq!(
        program.instructions().last().unwrap().op().family(),
        KernelFamily::Ger
    );
}

/// Julia recommended on leading inverse stacks: `A⁻¹B⁻¹C` becomes
/// `A\(B\C)` — solves applied right-to-left.
#[test]
fn julia_recommended_pending_solves() {
    let a = Operand::square("A", 30);
    let b = Operand::square("B", 30);
    let c = Operand::matrix("C", 30, 5);
    let chain = Chain::new(vec![
        Factor::inverted(a),
        Factor::inverted(b),
        Factor::plain(c),
    ])
    .unwrap();
    let program = JULIA_RECOMMENDED.compile(&chain);
    let names: Vec<&str> = program
        .instructions()
        .iter()
        .map(|i| i.op().operands()[0].name())
        .collect();
    assert_eq!(names, vec!["B", "A"]);
}
