//! Property-based tests (proptest) for the core invariants:
//! normalization, property-inference soundness against numeric checks,
//! DP optimality, and registry completeness.

use gmc::mcp::{brute_force_flops, matrix_chain_order};
use gmc::{FlopCount, GmcOptimizer};
use gmc_analysis::infer_properties;
use gmc_baselines::{all_strategies, Strategy as BaselineStrategy};
use gmc_experiments::generator::{random_chain, GeneratorConfig};
use gmc_expr::{Chain, Expr, Factor, Operand, Property, UnaryOp};
use gmc_kernels::KernelRegistry;
use gmc_linalg::{blas3, lapack, Matrix};
use gmc_runtime::materialize;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Square-operand strategy: a name, a size, and an optional property.
fn square_operand(n: usize) -> impl Strategy<Value = Operand> {
    (
        "[A-H]",
        prop::option::of(prop::sample::select(vec![
            Property::Diagonal,
            Property::LowerTriangular,
            Property::UpperTriangular,
            Property::Symmetric,
            Property::SymmetricPositiveDefinite,
            Property::Identity,
        ])),
        0u64..1_000_000,
    )
        .prop_map(move |(name, prop, uniq)| {
            // Unique names avoid accidental non-linear aliasing between
            // distinct random matrices.
            let op = Operand::square(format!("{name}{uniq}"), n);
            match prop {
                Some(p) => op.with_property(p),
                None => op,
            }
        })
}

/// A random square expression over `n×n` operands: products, sums and
/// unary operators, depth-bounded.
fn square_expr(n: usize) -> impl Strategy<Value = Expr> {
    let leaf = square_operand(n).prop_map(|op| op.expr());
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            inner.clone().prop_map(Expr::transpose),
            inner.clone().prop_map(Expr::inverse),
            inner.prop_map(Expr::inverse_transpose),
        ]
    })
}

/// Numerically evaluates an all-square expression.
fn eval(
    expr: &Expr,
    rng: &mut StdRng,
    cache: &mut std::collections::HashMap<String, Matrix>,
) -> Option<Matrix> {
    match expr {
        Expr::Symbol(op) => Some(
            cache
                .entry(op.name().to_owned())
                .or_insert_with(|| materialize(op, rng))
                .clone(),
        ),
        Expr::Times(fs) => {
            let mut acc: Option<Matrix> = None;
            for f in fs {
                let v = eval(f, rng, cache)?;
                acc = Some(match acc {
                    None => v,
                    Some(p) => blas3::gemm(1.0, &p, false, &v, false),
                });
            }
            acc
        }
        Expr::Plus(ts) => {
            let mut acc: Option<Matrix> = None;
            for t in ts {
                let v = eval(t, rng, cache)?;
                acc = Some(match acc {
                    None => v,
                    Some(p) => {
                        let mut s = p.clone();
                        for (o, x) in s.as_mut_slice().iter_mut().zip(v.as_slice()) {
                            *o += x;
                        }
                        s
                    }
                });
            }
            acc
        }
        Expr::Transpose(e) => Some(eval(e, rng, cache)?.transposed()),
        Expr::Inverse(e) => lapack::getri(&eval(e, rng, cache)?).ok(),
        Expr::InverseTranspose(e) => Some(lapack::getri(&eval(e, rng, cache)?).ok()?.transposed()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Normalization is idempotent and preserves the shape.
    #[test]
    fn normalization_idempotent_and_shape_preserving(expr in square_expr(4)) {
        let n1 = expr.normalized().expect("square exprs are well-formed");
        let n2 = n1.normalized().expect("normal form is well-formed");
        prop_assert_eq!(&n1, &n2);
        prop_assert_eq!(expr.shape().unwrap(), n1.shape().unwrap());
    }

    /// Normalization preserves the *value* of the expression.
    #[test]
    fn normalization_preserves_value(expr in square_expr(4), seed in 0u64..1000) {
        let normalized = expr.normalized().expect("well-formed");
        let mut cache = std::collections::HashMap::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let v1 = eval(&expr, &mut rng, &mut cache);
        let v2 = eval(&normalized, &mut rng, &mut cache);
        if let (Some(v1), Some(v2)) = (v1, v2) {
            prop_assert!(
                v1.approx_eq(&v2, 1e-5),
                "normalization changed the value: max diff {}",
                v1.max_abs_diff(&v2)
            );
        }
    }

    /// Everything the inference engine claims is numerically true.
    #[test]
    fn inference_is_sound(expr in square_expr(5), seed in 0u64..1000) {
        let props = infer_properties(&expr);
        let mut cache = std::collections::HashMap::new();
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(value) = eval(&expr, &mut rng, &mut cache) {
            let tol = 1e-5 * (1.0 + value.frobenius_norm());
            if props.contains(Property::LowerTriangular) {
                prop_assert!(value.is_lower_triangular(tol), "not lower triangular");
            }
            if props.contains(Property::UpperTriangular) {
                prop_assert!(value.is_upper_triangular(tol), "not upper triangular");
            }
            if props.contains(Property::Diagonal) {
                prop_assert!(value.is_diagonal(tol), "not diagonal");
            }
            if props.contains(Property::Symmetric) {
                prop_assert!(value.is_symmetric(tol), "not symmetric");
            }
            if props.contains(Property::SymmetricPositiveDefinite) {
                let mut chol = value.clone();
                // Regularize the tolerance: Cholesky of a numerically
                // near-singular SPD product can fail; only flag clear
                // violations (indefinite leading minors).
                if lapack::potrf(&mut chol).is_err() {
                    let sym = value.is_symmetric(tol);
                    prop_assert!(sym, "claimed SPD but not even symmetric");
                }
            }
            if props.contains(Property::Identity) {
                prop_assert!(
                    value.approx_eq(&Matrix::identity(value.rows()), 1e-6),
                    "not the identity"
                );
            }
        }
    }

    /// The classic MCP DP matches brute-force enumeration.
    #[test]
    fn mcp_dp_is_optimal(sizes in prop::collection::vec(1usize..60, 3..9)) {
        let dp = matrix_chain_order(&sizes);
        let bf = brute_force_flops(&sizes);
        prop_assert_eq!(dp.flops(), bf);
    }

    /// Registry completeness: *every* binary product of two unary-op
    /// factors matches at least one kernel in the full registry — the
    /// paper's assumption that `K` makes all chains computable.
    #[test]
    fn registry_is_complete_for_binary_products(
        left_op in prop::sample::select(vec![
            UnaryOp::None, UnaryOp::Transpose, UnaryOp::Inverse, UnaryOp::InverseTranspose
        ]),
        right_op in prop::sample::select(vec![
            UnaryOp::None, UnaryOp::Transpose, UnaryOp::Inverse, UnaryOp::InverseTranspose
        ]),
        lp in prop::option::of(prop::sample::select(vec![
            Property::Diagonal, Property::LowerTriangular, Property::UpperTriangular,
            Property::Symmetric, Property::SymmetricPositiveDefinite,
        ])),
        rp in prop::option::of(prop::sample::select(vec![
            Property::Diagonal, Property::LowerTriangular, Property::UpperTriangular,
            Property::Symmetric, Property::SymmetricPositiveDefinite,
        ])),
    ) {
        let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
        let mut a = Operand::square("A", 8);
        if let Some(p) = lp { a = a.with_property(p); }
        let mut b = Operand::square("B", 8);
        if let Some(p) = rp { b = b.with_property(p); }
        let left = Factor::new(a, left_op);
        let right = Factor::new(b, right_op);
        let product = Expr::times([left.expr(), right.expr()]);
        let matches = registry.match_expr(&product);
        prop_assert!(
            !matches.is_empty(),
            "no kernel matches {product}"
        );
    }

    /// PropertySet closure is insertion-order independent.
    #[test]
    fn property_set_order_independent(
        props in prop::collection::vec(
            prop::sample::select(vec![
                Property::Diagonal, Property::LowerTriangular, Property::UpperTriangular,
                Property::Symmetric, Property::SymmetricPositiveDefinite,
                Property::Identity, Property::Zero, Property::Orthogonal,
                Property::Permutation, Property::UnitDiagonal, Property::FullRank,
            ]),
            0..6
        ),
        shuffle_seed in 0u64..100,
    ) {
        use gmc_expr::PropertySet;
        let forward: PropertySet = props.iter().copied().collect();
        let mut shuffled = props.clone();
        // Simple deterministic shuffle.
        let mut s = shuffle_seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (s >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let backward: PropertySet = shuffled.into_iter().collect();
        prop_assert_eq!(forward, backward);
    }

    /// GMC never loses to any of the nine baseline strategies: on a
    /// random generalized chain (paper generator protocol), the
    /// optimizer's FLOP count is a lower bound on every baseline
    /// program's FLOP count, since all ten compile to the same kernel
    /// vocabulary and GMC minimizes over all parenthesizations.
    #[test]
    fn gmc_cost_is_a_lower_bound_on_all_baselines(seed in 0u64..1_000_000) {
        let config = GeneratorConfig::measured_scale();
        let mut rng = StdRng::seed_from_u64(seed);
        let chain = random_chain(&config, &mut rng);
        let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
        let gmc = GmcOptimizer::new(&registry, FlopCount)
            .solve(&chain)
            .expect("the full registry makes every generated chain computable");
        for strategy in all_strategies() {
            let program = strategy.compile(&chain);
            prop_assert!(
                gmc.flops() <= program.flops() * (1.0 + 1e-12),
                "GMC ({} flops) lost to {} ({} flops) on {chain}",
                gmc.flops(),
                strategy.label(),
                program.flops()
            );
        }
    }

    /// The allocation-free solver is bit-identical to the retained
    /// naive reference implementation (`gmc::reference`): same cost,
    /// same parenthesization, same kernel sequence — in both inference
    /// modes, and for the top-down formulation as well.
    #[test]
    fn solve_matches_naive_reference(seed in 0u64..1_000_000) {
        use gmc::{GmcWorkspace, InferenceMode};
        use gmc::reference::solve_reference;
        let config = GeneratorConfig::measured_scale();
        let mut rng = StdRng::seed_from_u64(seed);
        let chain = random_chain(&config, &mut rng);
        let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
        let mut ws = GmcWorkspace::new();
        for mode in [InferenceMode::Compositional, InferenceMode::Deep] {
            let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(mode);
            let reference = solve_reference(&registry, &FlopCount, mode, &chain)
                .expect("full registry computes all chains");
            let fast = optimizer.solve_with(&chain, &mut ws)
                .expect("full registry computes all chains");
            prop_assert_eq!(fast.cost(), reference.cost(), "cost diverged ({:?}) on {}", mode, &chain);
            prop_assert_eq!(
                fast.parenthesization(),
                reference.parenthesization(),
                "parenthesization diverged ({:?}) on {}", mode, &chain
            );
            prop_assert_eq!(fast.kernel_names(), reference.kernel_names());
            let top_down = optimizer.solve_top_down_with(&chain, &mut ws)
                .expect("full registry computes all chains");
            prop_assert_eq!(top_down.cost(), reference.cost());
            prop_assert_eq!(top_down.parenthesization(), reference.parenthesization());
            prop_assert_eq!(top_down.kernel_names(), reference.kernel_names());
        }
    }

    /// On a classic chain — all operands dense, unstructured and
    /// un-operated — GMC degenerates exactly to the textbook MCP DP:
    /// both find the same minimal FLOP count (GEMM at `2mnk` matches
    /// the MCP cost convention, and the sums are integer-exact in f64).
    #[test]
    fn gmc_equals_mcp_on_dense_chains(sizes in prop::collection::vec(2usize..40, 4..10)) {
        let mcp = matrix_chain_order(&sizes);
        let factors: Vec<Factor> = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| Factor::plain(Operand::matrix(format!("M{i}"), w[0], w[1])))
            .collect();
        let chain = Chain::new(factors).expect("dense factors form a valid chain");
        let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
        let gmc = GmcOptimizer::new(&registry, FlopCount)
            .solve(&chain)
            .expect("dense chains are computable");
        prop_assert_eq!(gmc.flops(), mcp.flops());
    }
}

/// A random symbolic chain for the plan-cache equivalence property:
/// boundary dimensions mix constants (including 1, producing vector
/// and outer-product sub-problems) with variables drawn from a small
/// pool (so variables repeat and structurally square factors arise),
/// factors randomly carry transposes, inverses and properties.
fn random_symbolic_chain(rng: &mut StdRng) -> gmc_expr::SymChain {
    use gmc_expr::{Dim, SymChain, SymFactor, SymOperand};
    use rand::Rng;
    let n = rng.gen_range(2..=8usize);
    let pool = ["sp_a", "sp_b", "sp_c"];
    let dims: Vec<Dim> = (0..=n)
        .map(|_| {
            if rng.gen_bool(0.35) {
                if rng.gen_bool(0.2) {
                    Dim::Const(1)
                } else {
                    Dim::Const(rng.gen_range(2..=6usize) * 10)
                }
            } else {
                Dim::var(pool[rng.gen_range(0..pool.len())])
            }
        })
        .collect();
    let factors: Vec<SymFactor> = (0..n)
        .map(|i| {
            let (r, c) = (dims[i], dims[i + 1]);
            let square = r == c;
            let transposed = rng.gen_bool(0.25);
            let (or, oc) = if transposed { (c, r) } else { (r, c) };
            let mut op = SymOperand::new(format!("M{i}"), or, oc);
            if square && rng.gen_bool(0.4) {
                let p = [
                    Property::Diagonal,
                    Property::LowerTriangular,
                    Property::UpperTriangular,
                    Property::Symmetric,
                    Property::SymmetricPositiveDefinite,
                ][rng.gen_range(0..5usize)];
                op = op.with_property(p).expect("structurally square");
            }
            let unary = if square && rng.gen_bool(0.3) {
                if transposed {
                    [UnaryOp::InverseTranspose, UnaryOp::Transpose][rng.gen_range(0..2usize)]
                } else {
                    [UnaryOp::Inverse, UnaryOp::None][rng.gen_range(0..2usize)]
                }
            } else if transposed {
                UnaryOp::Transpose
            } else {
                UnaryOp::None
            };
            SymFactor::new(op, unary)
        })
        .collect();
    SymChain::new(factors).expect("dims line up by construction")
}

proptest! {
    /// ISSUE 3 acceptance: for random chains with symbolic dimensions,
    /// binding the variables and instantiating the cached symbolic plan
    /// is bit-identical — cost, parenthesization, kernel sequence — to
    /// a from-scratch concrete solve, in both inference modes, across
    /// several bindings (different size regions included) and when the
    /// same binding is served again as a pure cache hit.
    #[test]
    fn symbolic_plan_matches_concrete_solve(seed in 0u64..1_000_000) {
        use gmc::InferenceMode;
        use gmc_expr::DimBindings;
        use gmc_plan::{PlanCache, PlanOutcome};
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eb011c);
        let chain = random_symbolic_chain(&mut rng);
        let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
        let sizes = [1usize, 2, 3, 7, 10, 40, 100];
        let bindings_list: Vec<DimBindings> = (0..3)
            .map(|_| {
                let mut b = DimBindings::new();
                for v in chain.vars() {
                    b.set_var(v, sizes[rng.gen_range(0..sizes.len())]);
                }
                b
            })
            .collect();
        for mode in [InferenceMode::Compositional, InferenceMode::Deep] {
            let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(mode);
            let cache = PlanCache::new(registry.clone(), mode);
            for pass in 0..2 {
                for bindings in &bindings_list {
                    let concrete = chain.bind(bindings).expect("all variables bound");
                    let reference = optimizer.solve(&concrete);
                    match (reference, cache.solve(&chain, bindings)) {
                        (Ok(want), Ok((got, outcome))) => {
                            prop_assert_eq!(
                                want.cost().to_bits(), got.cost().to_bits(),
                                "cost diverged ({:?}, {}) on {}", mode, outcome, &concrete
                            );
                            prop_assert_eq!(
                                want.parenthesization(), got.parenthesization(),
                                "parenthesization diverged ({:?}) on {}", mode, &concrete
                            );
                            prop_assert_eq!(want.kernel_names(), got.kernel_names());
                            prop_assert_eq!(want.flops(), got.flops());
                            if pass == 1 {
                                prop_assert_eq!(outcome, PlanOutcome::Hit);
                            }
                        }
                        (Err(_), Err(_)) => {}
                        (want, got) => prop_assert!(
                            false,
                            "solvability diverged ({:?}) on {}: {:?} vs {:?}",
                            mode, &concrete, want.map(|s| s.cost()), got.map(|(s, o)| (s.cost(), o))
                        ),
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    /// ISSUE 5 acceptance: under multi-threaded mixed hit/miss traffic
    /// against one shared `PlanCache`, every response is bit-identical
    /// — cost, parenthesization, kernel sequence — to a from-scratch
    /// `GmcOptimizer::solve` of the bound chain, in both inference
    /// modes. Threads deliberately overlap on bindings (hits and
    /// racing misses) and also carry thread-private bindings (misses
    /// recorded while other threads are reading).
    #[test]
    fn concurrent_plan_cache_matches_concrete_solve(seed in 0u64..1_000_000) {
        use gmc::InferenceMode;
        use gmc_expr::DimBindings;
        use gmc_plan::PlanCache;
        use rand::Rng;
        use std::sync::Arc;
        const THREADS: usize = 6;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0C0);
        let chains: Vec<gmc_expr::SymChain> =
            (0..3).map(|_| random_symbolic_chain(&mut rng)).collect();
        let sizes = [1usize, 2, 3, 7, 10, 40, 100];
        let binding_for = |chain: &gmc_expr::SymChain, rng: &mut StdRng| {
            let mut b = DimBindings::new();
            for v in chain.vars() {
                b.set_var(v, sizes[rng.gen_range(0..sizes.len())]);
            }
            b
        };
        // Shared bindings every thread replays (hit + racing-miss
        // traffic) plus a few per-thread-only ones (pure misses).
        let shared: Vec<(usize, DimBindings)> = (0..6)
            .map(|i| {
                let ci = i % chains.len();
                (ci, binding_for(&chains[ci], &mut rng))
            })
            .collect();
        let private: Vec<Vec<(usize, DimBindings)>> = (0..THREADS)
            .map(|_| {
                (0..3)
                    .map(|_| {
                        let ci = rng.gen_range(0..chains.len());
                        (ci, binding_for(&chains[ci], &mut rng))
                    })
                    .collect()
            })
            .collect();

        let registry = Arc::new(KernelRegistry::blas_lapack());
        for mode in [InferenceMode::Compositional, InferenceMode::Deep] {
            let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(mode);
            let cache = PlanCache::new(registry.clone(), mode);
            std::thread::scope(|scope| {
                for (t, mine) in private.iter().enumerate() {
                    let cache = &cache;
                    let chains = &chains;
                    let shared = &shared;
                    let optimizer = &optimizer;
                    scope.spawn(move || {
                        let mut order: Vec<&(usize, DimBindings)> =
                            shared.iter().chain(mine.iter()).collect();
                        // Stagger thread schedules so hits and misses
                        // interleave differently per thread.
                        let shift = t % order.len();
                        order.rotate_left(shift);
                        for pass in 0..2 {
                            for (ci, b) in &order {
                                let concrete = chains[*ci].bind(b).expect("bound");
                                let reference = optimizer.solve(&concrete);
                                match (reference, cache.solve(&chains[*ci], b)) {
                                    (Ok(want), Ok((got, _))) => {
                                        assert_eq!(
                                            want.cost().to_bits(),
                                            got.cost().to_bits(),
                                            "cost diverged ({mode:?}, pass {pass}) on {concrete}"
                                        );
                                        assert_eq!(
                                            want.parenthesization(),
                                            got.parenthesization(),
                                            "paren diverged ({mode:?}) on {concrete}"
                                        );
                                        assert_eq!(want.kernel_names(), got.kernel_names());
                                        assert_eq!(want.flops(), got.flops());
                                    }
                                    (Err(_), Err(_)) => {}
                                    (want, got) => panic!(
                                        "solvability diverged ({mode:?}) on {concrete}: {:?} vs {:?}",
                                        want.map(|s| s.cost()),
                                        got.map(|(s, o)| (s.cost(), o))
                                    ),
                                }
                            }
                        }
                    });
                }
            });
            // Accounting: every request was counted, and each recorded
            // region was recorded exactly once.
            let stats = cache.stats();
            prop_assert_eq!(
                stats.requests(),
                (THREADS * 2 * (shared.len() + 3)) as u64
            );
        }
    }
}
