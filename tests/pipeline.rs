//! End-to-end pipeline tests: parse → optimize → emit → execute →
//! validate, plus numeric validation of every baseline strategy on
//! random generalized chains.

use gmc::{FlopCount, GmcOptimizer, TimeModel};
use gmc_baselines::all_strategies;
use gmc_baselines::Strategy;
use gmc_experiments::generator::{random_chains, GeneratorConfig};
use gmc_expr::Chain;
use gmc_kernels::KernelRegistry;
use gmc_runtime::{validate_against_reference, Env};

fn small_config() -> GeneratorConfig {
    GeneratorConfig {
        size_min: 10,
        size_max: 60,
        size_step: 10,
        len_min: 3,
        len_max: 8,
        ..GeneratorConfig::default()
    }
}

#[test]
fn gmc_programs_compute_the_chain() {
    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    for (i, chain) in random_chains(&small_config(), 40, 101).iter().enumerate() {
        let sol = optimizer.solve(chain).expect("computable");
        let env = Env::random_for_chain(chain, 500 + i as u64);
        validate_against_reference(&sol.program(), chain, &env, 1e-4)
            .unwrap_or_else(|e| panic!("chain {i} ({chain}): {e}"));
    }
}

#[test]
fn baseline_programs_compute_the_chain() {
    for (i, chain) in random_chains(&small_config(), 25, 202).iter().enumerate() {
        let env = Env::random_for_chain(chain, 900 + i as u64);
        for strategy in all_strategies() {
            let program = strategy.compile(chain);
            validate_against_reference(&program, chain, &env, 1e-4)
                .unwrap_or_else(|e| panic!("chain {i} ({chain}) strategy {}: {e}", strategy.id()));
        }
    }
}

#[test]
fn time_model_solutions_also_compute_the_chain() {
    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, TimeModel::default());
    for (i, chain) in random_chains(&small_config(), 15, 303).iter().enumerate() {
        let sol = optimizer.solve(chain).expect("computable");
        let env = Env::random_for_chain(chain, 40 + i as u64);
        validate_against_reference(&sol.program(), chain, &env, 1e-4)
            .unwrap_or_else(|e| panic!("chain {i} ({chain}): {e}"));
    }
}

#[test]
fn parse_optimize_execute_round_trip() {
    let source = "\
# Generalized least squares normal-equations-ish chain.
Matrix M (60, 60) <SPD>
Matrix X (60, 20)
Vector y (60)
b := X^T * M^-1 * y
";
    let problem = gmc_frontend::parse(source).expect("parses");
    let (target, expr) = &problem.assignments[0];
    assert_eq!(target, "b");
    let chain = Chain::from_expr(expr).expect("chain");
    let registry = KernelRegistry::blas_lapack();
    let sol = GmcOptimizer::new(&registry, FlopCount)
        .solve(&chain)
        .expect("solves");
    // Must use a Cholesky solve, never an inverse.
    assert!(sol.kernel_names().iter().any(|k| k.starts_with("POSV")));
    let env = Env::random_for_chain(&chain, 77);
    validate_against_reference(&sol.program(), &chain, &env, 1e-6).expect("validates");
}

#[test]
fn cli_end_to_end() {
    let out =
        gmc_cli_like("Matrix L (40, 40) <LowerTriangular>\nMatrix B (40, 15)\nX := L^-1 * B\n");
    assert!(out.contains("trsm!"), "got:\n{out}");
}

// Minimal reimplementation of the CLI flow (the gmc-cli crate is a
// binary-oriented crate not linked here; this keeps the test local).
fn gmc_cli_like(input: &str) -> String {
    let problem = gmc_frontend::parse(input).unwrap();
    let registry = KernelRegistry::blas_lapack();
    let mut out = String::new();
    for (_, expr) in &problem.assignments {
        let chain = Chain::from_expr(expr).unwrap();
        let sol = GmcOptimizer::new(&registry, FlopCount)
            .solve(&chain)
            .unwrap();
        use gmc_codegen::Emitter;
        out.push_str(&gmc_codegen::JuliaEmitter::default().emit(&sol.program()));
    }
    out
}

#[test]
fn gmc_flops_never_exceed_any_baseline_on_random_chains() {
    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    for chain in random_chains(&GeneratorConfig::default(), 60, 404) {
        let gmc_flops = optimizer.solve(&chain).expect("computable").flops();
        for strategy in all_strategies() {
            let baseline_flops = strategy.compile(&chain).flops();
            assert!(
                gmc_flops <= baseline_flops * (1.0 + 1e-9),
                "GMC {gmc_flops} beaten by {} {baseline_flops} on {chain}",
                strategy.id()
            );
        }
    }
}
