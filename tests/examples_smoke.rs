//! Smoke test: all `examples/` binaries run to completion with a
//! zero exit status.
//!
//! `cargo test` builds every example before running integration tests,
//! so the compiled binaries already sit next to this test's own binary
//! (`target/<profile>/examples/`); running them directly avoids a
//! recursive `cargo` invocation and works identically under
//! `cargo test --release`. If a binary is missing (e.g. a stripped
//! custom target layout), the test falls back to `cargo run --example`.

use std::path::PathBuf;
use std::process::Command;

const EXAMPLES: [&str; 6] = [
    "quickstart",
    "cost_metrics",
    "ensemble_kalman",
    "generalized_eigenproblem",
    "triangular_inverse",
    "symbolic_reuse",
];

/// `target/<profile>/examples`, derived from this test binary's path
/// (`target/<profile>/deps/examples_smoke-<hash>`).
fn examples_dir() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let profile_dir = exe.parent()?.parent()?;
    let dir = profile_dir.join("examples");
    dir.is_dir().then_some(dir)
}

#[test]
fn all_examples_run_cleanly() {
    let dir = examples_dir();
    for example in EXAMPLES {
        let prebuilt = dir
            .as_ref()
            .map(|d| d.join(example))
            .filter(|p| p.is_file());
        let output = match prebuilt {
            Some(bin) => Command::new(bin)
                .output()
                .unwrap_or_else(|e| panic!("failed to launch example {example}: {e}")),
            None => Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
                .args(["run", "--quiet", "--example", example])
                .current_dir(env!("CARGO_MANIFEST_DIR"))
                .output()
                .unwrap_or_else(|e| panic!("failed to `cargo run` example {example}: {e}")),
        };
        assert!(
            output.status.success(),
            "example `{example}` exited with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{example}` printed nothing"
        );
    }
}
