//! Smoke test: all `examples/` binaries run to completion with a
//! zero exit status.
//!
//! `cargo test` builds every example before running integration tests,
//! so the compiled binaries already sit next to this test's own binary
//! (`target/<profile>/examples/`); running them directly avoids a
//! recursive `cargo` invocation and works identically under
//! `cargo test --release`. If a binary is missing (e.g. a stripped
//! custom target layout), the test falls back to `cargo run --example`.

use std::path::PathBuf;
use std::process::Command;

/// Every example in `examples/`, derived from the directory so a new
/// example is covered the moment the file lands (no hand-maintained
/// list to forget).
fn example_names() -> Vec<String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/ directory exists")
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if path.extension()? != "rs" {
                return None;
            }
            Some(path.file_stem()?.to_str()?.to_owned())
        })
        .collect();
    names.sort();
    assert!(names.len() >= 7, "examples/ unexpectedly sparse: {names:?}");
    names
}

/// `target/<profile>/examples`, derived from this test binary's path
/// (`target/<profile>/deps/examples_smoke-<hash>`).
fn examples_dir() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let profile_dir = exe.parent()?.parent()?;
    let dir = profile_dir.join("examples");
    dir.is_dir().then_some(dir)
}

#[test]
fn all_examples_run_cleanly() {
    let dir = examples_dir();
    for example in example_names() {
        let example = example.as_str();
        let prebuilt = dir
            .as_ref()
            .map(|d| d.join(example))
            .filter(|p| p.is_file());
        let output = match prebuilt {
            Some(bin) => Command::new(bin)
                .output()
                .unwrap_or_else(|e| panic!("failed to launch example {example}: {e}")),
            None => Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
                .args(["run", "--quiet", "--example", example])
                .current_dir(env!("CARGO_MANIFEST_DIR"))
                .output()
                .unwrap_or_else(|e| panic!("failed to `cargo run` example {example}: {e}")),
        };
        assert!(
            output.status.success(),
            "example `{example}` exited with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{example}` printed nothing"
        );
    }
}
