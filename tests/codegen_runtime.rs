//! Coverage of the less-traveled codegen and runtime paths: right-side
//! solves, transposed right-hand sides, composite inverse pairs,
//! identity elimination and explicit inversions — each emitted in every
//! language and executed against the numeric oracle.

use gmc::{FlopCount, GmcOptimizer};
use gmc_baselines::{Strategy, JULIA_NAIVE, JULIA_RECOMMENDED};
use gmc_codegen::{Emitter, JuliaEmitter, Program, PseudoEmitter, RustEmitter};
use gmc_expr::{Chain, Factor, Operand, Property};
use gmc_kernels::{KernelFamily, KernelRegistry};
use gmc_runtime::{execute, reference_eval, validate_against_reference, Env};

fn registry() -> KernelRegistry {
    KernelRegistry::blas_lapack()
}

fn solve(chain: &Chain) -> Program {
    GmcOptimizer::new(&registry(), FlopCount)
        .solve(chain)
        .expect("computable")
        .program()
}

fn assert_emitters_nonempty(program: &Program) {
    for code in [
        JuliaEmitter::default().emit(program),
        RustEmitter.emit(program),
        PseudoEmitter.emit(program),
    ] {
        assert!(!code.trim().is_empty());
    }
}

#[test]
fn right_side_general_solve() {
    // B · A⁻¹ with dimensions that force the right solve.
    let a = Operand::square("A", 30);
    let b = Operand::matrix("B", 12, 30);
    let chain = Chain::new(vec![Factor::plain(b), Factor::inverted(a)]).unwrap();
    let program = solve(&chain);
    assert_eq!(program.instructions()[0].op().family(), KernelFamily::Gesv);
    let julia = JuliaEmitter::default().emit(&program);
    // The right-side solve transposes around gesv!.
    assert!(julia.contains("gesv!"), "got:\n{julia}");
    let env = Env::random_for_chain(&chain, 1);
    validate_against_reference(&program, &chain, &env, 1e-6).unwrap();
    assert_emitters_nonempty(&program);
}

#[test]
fn right_side_spd_solve() {
    let a = Operand::square("A", 30).with_property(Property::SymmetricPositiveDefinite);
    let b = Operand::matrix("B", 12, 30);
    let chain = Chain::new(vec![Factor::plain(b), Factor::inverted(a)]).unwrap();
    let program = solve(&chain);
    assert_eq!(program.instructions()[0].op().family(), KernelFamily::Posv);
    let env = Env::random_for_chain(&chain, 2);
    validate_against_reference(&program, &chain, &env, 1e-6).unwrap();
}

#[test]
fn transposed_rhs_solve() {
    // A⁻¹ · Bᵀ: the _TB solver variants.
    let a = Operand::square("A", 25);
    let b = Operand::matrix("B", 10, 25);
    let chain = Chain::new(vec![Factor::inverted(a), Factor::transposed(b)]).unwrap();
    let program = solve(&chain);
    let env = Env::random_for_chain(&chain, 3);
    validate_against_reference(&program, &chain, &env, 1e-6).unwrap();
    let julia = JuliaEmitter::default().emit(&program);
    assert!(julia.contains("Matrix(B')"), "got:\n{julia}");
}

#[test]
fn composite_inverse_pair_executes() {
    let a = Operand::square("A", 20);
    let b = Operand::square("B", 20);
    for (fa, fb) in [
        (Factor::inverted(a.clone()), Factor::inverted(b.clone())),
        (
            Factor::inverse_transposed(a.clone()),
            Factor::inverted(b.clone()),
        ),
        (
            Factor::inverted(a.clone()),
            Factor::inverse_transposed(b.clone()),
        ),
        (Factor::inverse_transposed(a), Factor::inverse_transposed(b)),
    ] {
        let chain = Chain::new(vec![fa, fb]).unwrap();
        let program = solve(&chain);
        assert_eq!(
            program.instructions()[0].op().family(),
            KernelFamily::InvPair
        );
        let env = Env::random_for_chain(&chain, 4);
        validate_against_reference(&program, &chain, &env, 1e-5)
            .unwrap_or_else(|e| panic!("{chain}: {e}"));
        let julia = JuliaEmitter::default().emit(&program);
        assert!(julia.contains("inv("), "got:\n{julia}");
        assert_emitters_nonempty(&program);
    }
}

#[test]
fn identity_elimination_executes() {
    let i = Operand::square("I", 15).with_property(Property::Identity);
    let b = Operand::matrix("B", 15, 6);
    let chain = Chain::new(vec![Factor::plain(i), Factor::plain(b)]).unwrap();
    let program = solve(&chain);
    assert_eq!(program.instructions()[0].op().family(), KernelFamily::Copy);
    let env = Env::random_for_chain(&chain, 5);
    let mut exec_env = env.clone();
    let result = execute(&program, &mut exec_env).unwrap();
    assert_eq!(result, *env.get("B").unwrap());
    let julia = JuliaEmitter::default().emit(&program);
    assert!(julia.contains("copy(B)"), "got:\n{julia}");
}

#[test]
fn explicit_inversions_execute_for_every_kind() {
    // Naive strategies exercise every InvKind; validate numerically.
    let cases = vec![
        Operand::square("G", 18),
        Operand::square("S", 18).with_property(Property::SymmetricPositiveDefinite),
        Operand::square("L", 18).with_property(Property::LowerTriangular),
        Operand::square("U", 18).with_property(Property::UpperTriangular),
        Operand::square("D", 18).with_property(Property::Diagonal),
    ];
    let b = Operand::matrix("B", 18, 7);
    for op in cases {
        let chain =
            Chain::new(vec![Factor::inverted(op.clone()), Factor::plain(b.clone())]).unwrap();
        for strategy in [&JULIA_NAIVE, &gmc_baselines::ARMADILLO_NAIVE] {
            let program = strategy.compile(&chain);
            let env = Env::random_for_chain(&chain, 6);
            validate_against_reference(&program, &chain, &env, 1e-5)
                .unwrap_or_else(|e| panic!("{} on {chain}: {e}", strategy.id()));
        }
    }
}

#[test]
fn julia_emitter_protects_live_factor_matrices() {
    // `A⁻¹ B A`: gesv! destroys its factor argument, and A is used
    // again by the following product — the emitter must factorize a
    // copy of A, not A itself.
    let a = Operand::square("A", 12);
    let b = Operand::square("B", 12);
    let chain = Chain::new(vec![
        Factor::inverted(a.clone()),
        Factor::plain(b),
        Factor::plain(a.clone()),
    ])
    .unwrap();
    let program = JULIA_RECOMMENDED.compile(&chain);
    let julia = JuliaEmitter::default().emit(&program);
    assert!(
        julia.contains("gesv!(copy(A)"),
        "A clobbered while live:\n{julia}"
    );
    let env = Env::random_for_chain(&chain, 8);
    validate_against_reference(&program, &chain, &env, 1e-6).unwrap();

    // And the aliasing case `A⁻¹ A B`: the in-place RHS buffer must not
    // alias the factor operand (a `copy` is required on one of them).
    let c = Operand::matrix("C", 12, 5);
    let chain = Chain::new(vec![
        Factor::inverted(a.clone()),
        Factor::plain(a),
        Factor::plain(c),
    ])
    .unwrap();
    let program = JULIA_RECOMMENDED.compile(&chain);
    let julia = JuliaEmitter::default().emit(&program);
    assert!(
        !julia.contains("gesv!(A, A)"),
        "factor and RHS alias:\n{julia}"
    );
    let env = Env::random_for_chain(&chain, 9);
    validate_against_reference(&program, &chain, &env, 1e-6).unwrap();
}

#[test]
fn reference_eval_matches_manual_composition() {
    let a = Operand::square("A", 9);
    let v = Operand::col_vector("v", 9);
    let chain = Chain::new(vec![Factor::transposed(v.clone()), Factor::plain(a)]).unwrap();
    let env = Env::random_for_chain(&chain, 9);
    let result = reference_eval(&chain, &env).unwrap();
    assert_eq!(result.shape(), (1, 9));
    // vᵀA row vector result is validated against GMC's program.
    let program = solve(&chain);
    validate_against_reference(&program, &chain, &env, 1e-8).unwrap();
}

#[test]
fn rust_emitter_covers_solver_ops() {
    let a = Operand::square("A", 14).with_property(Property::SymmetricPositiveDefinite);
    let d = Operand::square("D", 14).with_property(Property::Diagonal);
    let b = Operand::matrix("B", 14, 4);
    let chain = Chain::new(vec![
        Factor::inverted(a),
        Factor::inverted(d),
        Factor::plain(b),
    ])
    .unwrap();
    let program = solve(&chain);
    let code = RustEmitter.emit(&program);
    assert!(code.contains("ops::"), "got:\n{code}");
    let env = Env::random_for_chain(&chain, 10);
    validate_against_reference(&program, &chain, &env, 1e-6).unwrap();
}
