//! Integration tests pinning the worked examples and numbers from the
//! paper (Sections 3.2–3.4, Table 1, Table 2).

use gmc::mcp::{brute_force_flops, matrix_chain_order};
use gmc::{FlopCount, GmcError, GmcOptimizer};
use gmc_codegen::{Emitter, JuliaEmitter};
use gmc_expr::{Chain, Factor, Operand, Property};
use gmc_kernels::{KernelFamily, KernelRegistry};

fn chain_of(expr: &gmc_expr::Expr) -> Chain {
    Chain::from_expr(expr).expect("well-formed chain")
}

/// Paper Sec. 3.2: `X := AᵀAB`, A ∈ R^{20×20}, B ∈ R^{20×15}.
/// Without property use: Aᵀ(AB) = 24000 flops, (AᵀA)B with two GEMMs =
/// 28000 flops; exploiting symmetry of AᵀA: (AᵀA)B = 22000 flops.
#[test]
fn ata_b_flop_counts() {
    let a = Operand::square("A", 20);
    let b = Operand::matrix("B", 20, 15);
    let chain = chain_of(&(a.transpose() * a.expr() * b.expr()));

    // Paper's accounting (no SYRK): 22000 via SYMM.
    let registry = KernelRegistry::builder()
        .without_family(KernelFamily::Syrk)
        .build();
    let sol = GmcOptimizer::new(&registry, FlopCount)
        .solve(&chain)
        .unwrap();
    assert_eq!(sol.flops(), 22000.0);
    assert_eq!(sol.parenthesization(), "((A^T A) B)");

    // Without property inference at all (only GEMM): 24000 via Aᵀ(AB).
    let registry = KernelRegistry::builder()
        .only_families([KernelFamily::Gemm])
        .build();
    let sol = GmcOptimizer::new(&registry, FlopCount)
        .solve(&chain)
        .unwrap();
    assert_eq!(sol.flops(), 24000.0);
    assert_eq!(sol.parenthesization(), "(A^T (A B))");

    // Paper's closing note: SYRK halves the AᵀA cost (8000 + 6000).
    let registry = KernelRegistry::blas_lapack();
    let sol = GmcOptimizer::new(&registry, FlopCount)
        .solve(&chain)
        .unwrap();
    assert_eq!(sol.flops(), 14000.0);
    assert_eq!(sol.kernel_names(), vec!["SYRK_T", "SYMM_LN"]);
}

/// Paper Sec. 3.3: `ABCDE` with sizes 130, 700, 383, 1340, 193, 900.
/// FLOP optimum (((AB)C)D)E at ~3.16e8; the alternative ((AB)(CD))E at
/// ~3.32e8 (which the paper measured to be ~10% faster in time).
#[test]
fn abcde_metric_crossover() {
    let sizes = [130usize, 700, 383, 1340, 193, 900];
    let sol = matrix_chain_order(&sizes);
    assert_eq!(
        sol.parenthesization(&["A", "B", "C", "D", "E"]),
        "((((AB)C)D)E)"
    );
    let flops = sol.flops();
    assert!((flops - 3.16e8).abs() / 3.16e8 < 0.01, "got {flops}");

    // The alternative parenthesization the paper discusses.
    let alt = 2.0 * (130 * 383 * 700) as f64
        + 2.0 * (383 * 193 * 1340) as f64
        + 2.0 * (130 * 193 * 383) as f64
        + 2.0 * (130 * 900 * 193) as f64;
    assert!((alt - 3.32e8).abs() / 3.32e8 < 0.01, "got {alt}");
    assert!(alt > flops);

    // DP matches brute force on this instance.
    assert_eq!(flops, brute_force_flops(&sizes));
}

/// Paper Sec. 3.4 (completeness): `X := A⁻¹B⁻¹C` with no kernel for
/// `X⁻¹Y⁻¹` is still computable by solving two linear systems; with the
/// composite kernel available the optimizer may use either.
#[test]
fn inverse_pair_completeness() {
    let a = Operand::square("A", 100);
    let b = Operand::square("B", 100);
    let c = Operand::matrix("C", 100, 10);
    let chain = chain_of(&(a.inverse() * b.inverse() * c.expr()));

    let strict = KernelRegistry::builder()
        .without_composite_inverse()
        .build();
    let sol = GmcOptimizer::new(&strict, FlopCount).solve(&chain).unwrap();
    assert_eq!(sol.parenthesization(), "(A^-1 (B^-1 C))");
    assert_eq!(sol.kernel_names(), vec!["GESV_LN", "GESV_LN"]);

    // A chain that *cannot* be saved by re-parenthesization: A⁻¹B⁻¹
    // alone has no alternative split.
    let two = chain_of(&(a.inverse() * b.inverse()));
    assert!(matches!(
        GmcOptimizer::new(&strict, FlopCount).solve(&two),
        Err(GmcError::NotComputable { .. })
    ));
    // With the composite kernel it becomes computable.
    let full = KernelRegistry::blas_lapack();
    let sol = GmcOptimizer::new(&full, FlopCount).solve(&two).unwrap();
    assert_eq!(sol.kernel_names(), vec!["INVPAIR_NN"]);
}

/// Paper Sec. 4: chains `M1 ··· Mn v1 v2ᵀ` are best computed as a GEMV
/// cascade followed by an outer product — and GMC finds exactly that.
#[test]
fn vector_chain_gemv_cascade() {
    let registry = KernelRegistry::blas_lapack();
    let m1 = Operand::square("M1", 300);
    let m2 = Operand::square("M2", 300);
    let m3 = Operand::square("M3", 300);
    let v1 = Operand::col_vector("v1", 300);
    let v2 = Operand::col_vector("v2", 200);
    let chain = chain_of(&(m1.expr() * m2.expr() * m3.expr() * v1.expr() * v2.transpose()));
    let sol = GmcOptimizer::new(&registry, FlopCount)
        .solve(&chain)
        .unwrap();
    assert_eq!(
        sol.kernel_names(),
        vec!["GEMV_N", "GEMV_N", "GEMV_N", "GER"]
    );
    assert_eq!(sol.parenthesization(), "((M1 (M2 (M3 v1))) v2^T)");
}

/// Paper Table 1: the example kernels with their paper costs, as
/// instantiated operations.
#[test]
fn table1_kernel_costs() {
    let registry = KernelRegistry::blas_lapack();
    let m = 30;
    let n = 20;
    let k = 30;

    // GEMM: 2mnk.
    let a = Operand::matrix("A", m, k);
    let b = Operand::matrix("B", k, n);
    let best = registry.best_by_flops(&(a.expr() * b.expr())).unwrap();
    assert_eq!(best.kernel.name(), "GEMM_NN");
    assert_eq!(best.flops(), 2.0 * (m * n * k) as f64);

    // TRMM: m²n.
    let l = Operand::square("L", m).with_property(Property::LowerTriangular);
    let b = Operand::matrix("B", m, n);
    let best = registry.best_by_flops(&(l.expr() * b.expr())).unwrap();
    assert_eq!(best.kernel.name(), "TRMM_LLN");
    assert_eq!(best.flops(), (m * m * n) as f64);

    // SYMM: m²n.
    let s = Operand::square("S", m).with_property(Property::Symmetric);
    let best = registry.best_by_flops(&(s.expr() * b.expr())).unwrap();
    assert_eq!(best.kernel.name(), "SYMM_LN");
    assert_eq!(best.flops(), (m * m * n) as f64);

    // TRSM: m²n.
    let best = registry.best_by_flops(&(l.inverse() * b.expr())).unwrap();
    assert_eq!(best.kernel.name(), "TRSM_LLN");
    assert_eq!(best.flops(), (m * m * n) as f64);

    // SYRK: m²k (XᵀX with X k×m).
    let x = Operand::matrix("X", k, n);
    let best = registry.best_by_flops(&(x.transpose() * x.expr())).unwrap();
    assert_eq!(best.kernel.name(), "SYRK_T");
    assert_eq!(best.flops(), (n * n * k) as f64);
}

/// Paper Table 2 (GMC row): the generated Julia code for `A⁻¹BCᵀ` is
/// exactly the paper's two-kernel sequence with buffer reuse.
#[test]
fn table2_gmc_julia_code() {
    let a = Operand::square("A", 2000).with_property(Property::SymmetricPositiveDefinite);
    let b = Operand::matrix("B", 2000, 200);
    let c = Operand::square("C", 200).with_property(Property::LowerTriangular);
    let chain = chain_of(&(a.inverse() * b.expr() * c.transpose()));
    let registry = KernelRegistry::blas_lapack();
    let sol = GmcOptimizer::new(&registry, FlopCount)
        .solve(&chain)
        .unwrap();
    let code = JuliaEmitter::default().emit(&sol.program());
    assert_eq!(
        code,
        "trmm!('R', 'L', 'T', 'N', 1.0, C, B)\nposv!('L', A, B)\n# result in B"
    );
}

/// On classic chains (no operators, no properties) GMC with the full
/// registry coincides with the standard MC algorithm (paper Sec. 2).
#[test]
fn gmc_subsumes_classic_mcp() {
    let registry = KernelRegistry::blas_lapack();
    let cases: &[&[usize]] = &[
        &[10, 100, 5, 50],
        &[40, 20, 30, 10, 30],
        &[130, 700, 383, 1340, 193, 900],
        &[5, 3, 7, 2, 9, 4, 8, 3],
    ];
    for sizes in cases {
        let n = sizes.len() - 1;
        let ops: Vec<Operand> = (0..n)
            .map(|i| Operand::matrix(format!("M{i}"), sizes[i], sizes[i + 1]))
            .collect();
        let chain = Chain::new(ops.into_iter().map(Factor::plain).collect()).unwrap();
        let gmc = GmcOptimizer::new(&registry, FlopCount)
            .solve(&chain)
            .unwrap();
        let classic = matrix_chain_order(sizes);
        assert_eq!(gmc.flops(), classic.flops(), "sizes {sizes:?}");
    }
}
