//! Soak/stress suite: adversarial workload traces replayed against a
//! multi-worker server, asserting the serving tier's invariants under
//! pressure — every response bit-identical to a cold reference solve,
//! counters exactly accounting for every request, no recording
//! duplicated, histogram totals equal to request totals. The trace
//! shapes are the ones that have historically hurt: all-miss region
//! churn, duplicate-coalescing storms, renamed-variable aliasing (the
//! canonical-key crash family), and bursty open-loop arrival timing.
//! Iteration counts are bounded so the suite stays `cargo test`-sized.

use gmc_bench::replay::{replay_trace, ReplayOptions, Verify};
use gmc_bench::workload::{generate, WorkloadSpec};
use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand};
use gmc_kernels::KernelRegistry;
use gmc_serve::{ServeConfig, Server};
use std::sync::Arc;

fn preset(name: &str, seed: u64, requests: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::preset(name, seed).expect("known preset");
    spec.requests = requests;
    spec
}

fn assert_clean(report: &gmc_bench::replay::ReplayReport) {
    assert!(
        report.is_clean(),
        "replay violations:\n  {}",
        report.violations.join("\n  ")
    );
}

#[test]
fn soak_mixed_preset_upholds_all_invariants() {
    let trace = generate(&preset("mixed", 0xA11CE, 150)).unwrap();
    let report = replay_trace(
        &trace,
        &ReplayOptions {
            workers: 4,
            verify: Verify::All,
            ..ReplayOptions::default()
        },
    )
    .unwrap();
    assert_clean(&report);
    assert_eq!(report.results.len(), 150);
    assert_eq!(report.stats.served.completed, 150);
    assert_eq!(report.stats.latency.total.count(), 150);
    assert!(report.verified > 0);
}

#[test]
fn soak_all_miss_churn_never_caches_wrong() {
    // Pure region churn: every request aims at an unseen region, so
    // the plan cache records constantly while never wrongly reusing.
    let trace = generate(&preset("churn", 0xC0FFEE, 120)).unwrap();
    let report = replay_trace(
        &trace,
        &ReplayOptions {
            workers: 4,
            verify: Verify::All,
            ..ReplayOptions::default()
        },
    )
    .unwrap();
    assert_clean(&report);
    let served = report.stats.served;
    assert!(
        served.misses >= served.hits,
        "churn should be miss-dominated: {served:?}"
    );
}

#[test]
fn soak_duplicate_storm_coalesces_in_one_batch() {
    // The whole trace submitted as a single batch: maximal grouping
    // window, so the 90% duplicate traffic must coalesce — and every
    // coalesced waiter still gets a bit-identical answer and exactly
    // one latency sample.
    let trace = generate(&preset("storm", 0x5708, 150)).unwrap();
    let report = replay_trace(
        &trace,
        &ReplayOptions {
            workers: 4,
            window: 0,
            verify: Verify::Sample(25),
            ..ReplayOptions::default()
        },
    )
    .unwrap();
    assert_clean(&report);
    assert!(
        report.stats.coalesced > 0,
        "storm trace in one batch must coalesce duplicates: {}",
        report.stats
    );
    // Coalescing means fewer instantiates than completions.
    assert!(report.stats.cache.requests() < report.stats.served.completed);
}

#[test]
fn soak_renamed_alias_twins_answer_bit_identically() {
    // The PR 5 crash family: structurally identical chains registered
    // under different dimension-variable names share one canonical
    // plan-cache key. Interleaved traffic across base and twin must
    // still produce answers bit-identical to cold per-structure solves.
    let trace = generate(&preset("aliased", 0xA71A5, 120)).unwrap();
    let twins = trace
        .structures
        .iter()
        .filter(|s| s.name.ends_with('x'))
        .count();
    assert!(twins > 0, "aliased preset must register renamed twins");
    assert!(
        trace
            .requests
            .iter()
            .any(|r| trace.structures[r.structure].name.ends_with('x')),
        "trace must actually exercise a twin"
    );
    let report = replay_trace(
        &trace,
        &ReplayOptions {
            workers: 4,
            verify: Verify::All,
            ..ReplayOptions::default()
        },
    )
    .unwrap();
    assert_clean(&report);
}

#[test]
fn soak_bursty_open_loop_timing() {
    // Honor the trace's on-off arrival offsets (microsecond scale, so
    // the sleeps stay tiny) — timing gaps must not break accounting.
    let trace = generate(&preset("bursty", 0xB057, 100)).unwrap();
    assert!(trace.requests.last().unwrap().at_us > 0);
    let report = replay_trace(
        &trace,
        &ReplayOptions {
            workers: 2,
            honor_timing: true,
            verify: Verify::Sample(15),
            ..ReplayOptions::default()
        },
    )
    .unwrap();
    assert_clean(&report);
    assert_eq!(report.stats.served.completed, 100);
}

#[test]
fn soak_interleaved_registration_and_traffic() {
    // Registrations racing live traffic: new structures appear while
    // bursts against older ones are in flight. Accounting must hold
    // across the interleaving, and requests against structures that
    // appear later in the stream must be served once registered.
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    );
    let handle = server.handle();
    let make_chain = |tag: usize| -> SymChain {
        let dims: Vec<Dim> = (0..4).map(|i| Dim::var(&format!("ir{tag}d{i}"))).collect();
        SymChain::new(
            (0..3)
                .map(|i| SymFactor::plain(SymOperand::new(format!("M{i}"), dims[i], dims[i + 1])))
                .collect(),
        )
        .unwrap()
    };
    let bindings_for = |tag: usize, scale: usize| -> DimBindings {
        let mut b = DimBindings::new();
        for i in 0..4 {
            b.set(&format!("ir{tag}d{i}"), 10 + 7 * i + 5 * scale);
        }
        b
    };

    let structures = 5usize;
    let per_round = 20usize;
    let mut tickets = Vec::new();
    let mut submitted = 0usize;
    for tag in 0..structures {
        server
            .register(&format!("R{tag}"), make_chain(tag))
            .unwrap();
        // Burst against every structure registered so far, mid-stream.
        for i in 0..per_round {
            let target = i % (tag + 1);
            tickets.push(handle.submit(&format!("R{target}"), bindings_for(target, i % 4)));
            submitted += 1;
        }
    }
    let mut ok = 0usize;
    for t in tickets {
        let reply = t.wait();
        assert!(reply.result.is_ok(), "{reply:?}");
        ok += 1;
    }
    assert_eq!(ok, submitted);
    let s = server.stats();
    assert_eq!(s.served.completed + s.served.rejected, submitted as u64);
    assert_eq!(s.served.rejected, 0);
    assert_eq!(
        s.served.hits + s.served.misses + s.served.failed,
        s.served.completed
    );
    assert_eq!(s.latency.total.count(), s.served.completed);
    let class_total: u64 = s.latency.classes.iter().map(|c| c.snapshot.count()).sum();
    assert_eq!(class_total, s.served.hits + s.served.misses);
    assert_eq!(s.structures, structures);
    server.shutdown();
}
