//! Chaos soak suite: trace replays with deterministic fault injection.
//!
//! A seeded `gmc-faults/1` plan is replayed against a live server and
//! the run must uphold the serving tier's promises under hostility:
//! every submitted request is answered exactly once, the counters
//! balance (`completed + rejected == submitted`,
//! `hits + misses + failed == completed`) under worker panics,
//! admission overload and deadline expiry, no thread panic escapes to
//! the test harness, and every surviving reply is bit-identical to a
//! cold reference solve (the replay harness checks all of this and
//! reports violations; the tests here assert the chaos actually
//! happened too, so a silently-disarmed fault plan cannot pass).

use gmc_bench::replay::{replay_trace, ReplayOptions, Verify};
use gmc_bench::workload::{generate, WorkloadSpec};
use gmc_serve::faults::{FaultPlan, FaultSpec};

fn trace_of(requests: usize, seed: u64) -> gmc_bench::workload::Trace {
    let mut spec = WorkloadSpec::preset("mixed", seed).expect("known preset");
    spec.requests = requests;
    generate(&spec).expect("trace generates")
}

#[test]
fn seeded_chaos_replay_upholds_every_invariant() {
    // The default spec injects 2 caught panics, 1 worker kill, 2
    // delays, 2 connection drops, 2 expired deadlines and one
    // 32-request burst into a capacity-8 queue — ≥1 worker panic, ≥1
    // queue-full burst and ≥1 expired deadline in one replay, per the
    // chaos acceptance bar.
    let spec = FaultSpec::default();
    let plan = FaultPlan::seeded(&spec).expect("plan generates");
    assert!(plan.injects_panics());
    let trace = trace_of(spec.requests, 11);
    let opts = ReplayOptions {
        workers: 3,
        verify: Verify::All,
        faults: Some(plan.clone()),
        ..ReplayOptions::default()
    };
    let report = replay_trace(&trace, &opts).expect("replay runs");
    assert!(
        report.is_clean(),
        "chaos violations:\n  {}",
        report.violations.join("\n  ")
    );
    // Exactly one result slot per request, in order.
    assert_eq!(report.results.len(), spec.requests);
    // The chaos really happened — and deterministically so. The burst
    // hits an empty gate (closed-loop windows drain between batches),
    // so exactly size - capacity of its requests are shed.
    assert_eq!(
        report.queue_full_replies,
        spec.burst_size - spec.queue_capacity
    );
    assert_eq!(report.expired_replies, spec.expires);
    assert_eq!(report.abandoned, spec.drops);
    // Panics and kills answer `internal`; coalesced twins of a faulted
    // request share its fate, so this is a floor, not an equality.
    assert!(report.internal_replies >= spec.panics + spec.kills);
    // Only kills take a thread down (panics are caught in-worker), and
    // the supervisor replaced every lost thread.
    assert_eq!(report.worker_panics, spec.kills as u64);
    assert_eq!(report.respawns, spec.kills as u64);
    // Counter balance, spelled out (the harness also checks these).
    let served = report.stats.served;
    assert_eq!(served.completed + served.rejected, spec.requests as u64);
    assert_eq!(
        served.hits + served.misses + served.failed,
        served.completed
    );
    assert_eq!(
        served.rejected_overload,
        (spec.burst_size - spec.queue_capacity) as u64
    );
    assert_eq!(served.expired, spec.expires as u64);

    // Same trace, same plan, same answers: chaos is replayable.
    let again = replay_trace(&trace, &opts).expect("replay runs");
    assert!(
        again.is_clean(),
        "rerun violations:\n  {}",
        again.violations.join("\n  ")
    );
    assert_eq!(report.results, again.results);
}

#[test]
fn repeated_kills_exhaust_and_respawn_within_budget() {
    let spec = FaultSpec {
        seed: 23,
        requests: 60,
        panics: 1,
        kills: 3,
        delays: 0,
        drops: 1,
        expires: 1,
        bursts: 1,
        burst_size: 12,
        queue_capacity: 4,
        ..FaultSpec::default()
    };
    let plan = FaultPlan::seeded(&spec).expect("plan generates");
    let trace = trace_of(spec.requests, 29);
    let report = replay_trace(
        &trace,
        &ReplayOptions {
            workers: 2,
            verify: Verify::All,
            faults: Some(plan),
            ..ReplayOptions::default()
        },
    )
    .expect("replay runs");
    assert!(
        report.is_clean(),
        "chaos violations:\n  {}",
        report.violations.join("\n  ")
    );
    // Three kills, three respawns: the pool was restored after every
    // loss (the default restart budget of 8 covers all three) and the
    // replay still answered every request.
    assert_eq!(report.worker_panics, 3);
    assert_eq!(report.respawns, 3);
    assert_eq!(report.queue_full_replies, 12 - 4);
    assert!(report.internal_replies >= 4, "{report:?}");
}
