//! End-to-end integration of the symbolic pipeline: input language with
//! identifier dimensions → `SymChain` → `gmc-plan` cache → solutions,
//! regions, and size-generic code emission.

use gmc::{FlopCount, GmcOptimizer, InferenceMode};
use gmc_codegen::emit_size_generic_rust;
use gmc_expr::DimBindings;
use gmc_frontend::{parse, render_problem};
use gmc_kernels::KernelRegistry;
use gmc_plan::{PlanCache, PlanOutcome};

const SYMBOLIC_MCP: &str = "\
Matrix A (n, k)
Matrix B (k, m)
Matrix C (m, n)
X := A * B * C
";

#[test]
fn regions_select_different_parenthesizations() {
    let problem = parse(SYMBOLIC_MCP).unwrap();
    let sym = problem.symbolic.as_ref().expect("symbolic problem");
    let (_, chain) = &sym.chains[0];
    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    let cache = PlanCache::new(registry.clone(), InferenceMode::Compositional);

    // Both parenthesizations share the 2nmk term, so the comparison is
    // n²m vs n²k: m < k → ((A B) C), m > k → (A (B C)).
    let b1 = DimBindings::new()
        .with("n", 10)
        .with("k", 1000)
        .with("m", 10);
    let (s1, o1) = cache.solve(chain, &b1).unwrap();
    assert_eq!(o1, PlanOutcome::MissStructure);
    assert_eq!(s1.parenthesization(), "((A B) C)");

    // Same region, scaled sizes: cache hit, same paren.
    let b2 = DimBindings::new()
        .with("n", 20)
        .with("k", 2000)
        .with("m", 20);
    let (s2, o2) = cache.solve(chain, &b2).unwrap();
    assert_eq!(o2, PlanOutcome::Hit);
    assert_eq!(s2.parenthesization(), "((A B) C)");

    // Flipped ordering: new region, the other paren.
    let b3 = DimBindings::new()
        .with("n", 10)
        .with("k", 20)
        .with("m", 1000);
    let (s3, o3) = cache.solve(chain, &b3).unwrap();
    assert_eq!(o3, PlanOutcome::MissRegion);
    assert_eq!(s3.parenthesization(), "(A (B C))");

    let stats = cache.stats();
    assert_eq!(stats.requests(), 3);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.structure_misses, 1);
    assert_eq!(stats.region_misses, 1);
    assert_eq!(cache.plan_for(chain).unwrap().region_count(), 2);
}

#[test]
fn structured_symbolic_problem_resolves_fully() {
    // The symbolic Table 2 chain: with the SPD/triangular structure the
    // kernel choice and split are size-independent, so the whole plan
    // resolves symbolically and instantiation never scans candidates.
    let problem = parse(
        "Matrix A (n, n) <SPD>\nMatrix B (n, m)\nMatrix C (m, m) <LowerTriangular>\n\
         X := A^-1 * B * C^T\n",
    )
    .unwrap();
    let sym = problem.symbolic.as_ref().unwrap();
    let (_, chain) = &sym.chains[0];
    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    let cache = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    let b = DimBindings::new().with("n", 2000).with("m", 200);
    let (sol, _) = cache.solve(chain, &b).unwrap();
    assert_eq!(sol.kernel_names(), vec!["TRMM_RLT", "POSV_LN"]);
    let summary = cache.region_summary(chain, &b).unwrap();
    assert_eq!(summary.dynamic, 0);
    assert_eq!(summary.unsolvable, 0);
    assert!(
        summary.resolved >= 1,
        "expected symbolically resolved cells, got {summary}"
    );
}

#[test]
fn frontend_plan_and_concrete_optimizer_agree() {
    let problem = parse(SYMBOLIC_MCP).unwrap();
    let sym = problem.symbolic.as_ref().unwrap();
    let (_, chain) = &sym.chains[0];
    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    let cache = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    for (n, k, m) in [(30, 40, 50), (50, 40, 30), (8, 8, 8), (1, 5, 9)] {
        let b = DimBindings::new().with("n", n).with("k", k).with("m", m);
        let concrete = chain.bind(&b).unwrap();
        let want = optimizer.solve(&concrete).unwrap();
        let (got, _) = cache.solve(chain, &b).unwrap();
        assert_eq!(want.cost().to_bits(), got.cost().to_bits());
        assert_eq!(want.parenthesization(), got.parenthesization());
        assert_eq!(want.kernel_names(), got.kernel_names());
    }
}

#[test]
fn size_generic_emission_from_cached_plan() {
    let problem = parse(SYMBOLIC_MCP).unwrap();
    let sym = problem.symbolic.as_ref().unwrap();
    let (_, chain) = &sym.chains[0];
    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    let cache = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    let b = DimBindings::new().with("n", 10).with("k", 20).with("m", 30);
    let (sol, _) = cache.solve(chain, &b).unwrap();
    let code = emit_size_generic_rust(&sol.program(), chain);
    assert!(
        code.contains("pub fn compute(n: usize, k: usize, m: usize"),
        "{code}"
    );
    assert!(code.contains("A: n x k"), "{code}");
    assert!(code.contains("ops::gemm"), "{code}");
}

#[test]
fn render_problem_round_trips_through_plan() {
    let problem = parse(SYMBOLIC_MCP).unwrap();
    let rendered = render_problem(&problem);
    assert_eq!(rendered, SYMBOLIC_MCP);
    // The re-parsed problem produces the same structure key, so plans
    // recorded for one serve the other.
    let reparsed = parse(&rendered).unwrap();
    let c1 = &problem.symbolic.as_ref().unwrap().chains[0].1;
    let c2 = &reparsed.symbolic.as_ref().unwrap().chains[0].1;
    assert_eq!(
        gmc_plan::structure_key(c1, InferenceMode::Compositional),
        gmc_plan::structure_key(c2, InferenceMode::Compositional)
    );
}

#[test]
fn deep_inference_plans_are_cached_independently() {
    let problem = parse("Matrix A (p, q)\nMatrix B (p, q)\nX := A^T * B * B^T * A\n").unwrap();
    let sym = problem.symbolic.as_ref().unwrap();
    let (_, chain) = &sym.chains[0];
    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    for mode in [InferenceMode::Compositional, InferenceMode::Deep] {
        let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(mode);
        let cache = PlanCache::new(registry.clone(), mode);
        for (p, q) in [(60, 4), (4, 60), (60, 4)] {
            let b = DimBindings::new().with("p", p).with("q", q);
            let want = optimizer.solve(&chain.bind(&b).unwrap()).unwrap();
            let (got, _) = cache.solve(chain, &b).unwrap();
            assert_eq!(want.cost().to_bits(), got.cost().to_bits(), "{mode:?}");
            assert_eq!(want.kernel_names(), got.kernel_names(), "{mode:?}");
        }
        assert_eq!(cache.stats().hits, 1, "{mode:?}");
    }
}
